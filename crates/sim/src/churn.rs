//! Deterministic tenant-churn plans for the serving layer.
//!
//! A [`ChurnPlan`] scripts *when tenants come and go*: at simulated time
//! `t` a named tenant submits a task set ([`ChurnAction::Arrive`]) or an
//! admitted tenant departs ([`ChurnAction::Depart`]). The serving layer
//! replays the plan against its admission controller, so the same plan
//! and seed always yield the same sequence of admissions, rejections and
//! evictions — churn experiments are exactly as replayable as fault
//! injection ([`crate::fault`]).
//!
//! The plan is pure data: it says nothing about *whether* an arrival is
//! admitted. That decision belongs to the online RMWP admission test in
//! `rtseed-analysis`, consulted by the serving layer at replay time.

use rtseed_model::{QosFloor, Span, TaskSpec, Time};
use serde::{Deserialize, Serialize};

/// What a tenant does at a churn instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// A tenant named `name` submits `tasks` for admission.
    ///
    /// Whether the submission is admitted is decided by the serving
    /// layer's admission test at replay time; a rejected arrival leaves
    /// no residue and the same name may arrive again later.
    Arrive {
        /// Tenant name; also the key a later [`ChurnAction::Depart`]
        /// refers to.
        name: String,
        /// The task set the tenant wants scheduled.
        tasks: Vec<TaskSpec>,
    },
    /// A tenant named `name` submits `tasks` through the serving
    /// layer's bounded submit queue (admission backpressure): the
    /// request is decided in batched admission rounds, retrying blocked
    /// submissions with backoff until `timeout` expires. Several
    /// `Submit` events at the same instant form one burst decided in a
    /// single deterministic round.
    Submit {
        /// Tenant name; also the key a later [`ChurnAction::Depart`]
        /// refers to.
        name: String,
        /// The task set the tenant wants scheduled.
        tasks: Vec<TaskSpec>,
        /// The tenant's QoS floor (SLA), applied to every task.
        floor: QosFloor,
        /// How long the request may wait in the queue before it is
        /// dropped (measured from the submit instant).
        timeout: Span,
    },
    /// The admitted tenant named `name` departs, releasing its tasks and
    /// the utilization they held. Departures of unknown or rejected
    /// tenants are ignored at replay time.
    Depart {
        /// Name given at arrival.
        name: String,
    },
}

/// A churn instant: an action at a simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the action happens.
    pub at: Time,
    /// What happens.
    pub action: ChurnAction,
}

/// A time-ordered script of tenant arrivals and departures.
///
/// Events are kept sorted by time; events at the same instant keep their
/// insertion order (stable), so a plan built in a fixed order replays
/// identically every run.
///
/// # Examples
///
/// ```
/// use rtseed_model::{Span, TaskSpec, Time};
/// use rtseed_sim::churn::ChurnPlan;
///
/// let task = TaskSpec::builder("τ")
///     .period(Span::from_millis(100))
///     .mandatory(Span::from_millis(10))
///     .windup(Span::from_millis(10))
///     .build()?;
/// let plan = ChurnPlan::new()
///     .arrive(Time::ZERO, "alpha", vec![task])
///     .depart(Time::from_nanos(500_000_000), "alpha");
/// assert_eq!(plan.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan: no tenant ever arrives or departs.
    pub fn new() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// Adds an arrival of tenant `name` with `tasks` at time `at`.
    #[must_use]
    pub fn arrive(mut self, at: Time, name: impl Into<String>, tasks: Vec<TaskSpec>) -> ChurnPlan {
        self.push(ChurnEvent {
            at,
            action: ChurnAction::Arrive {
                name: name.into(),
                tasks,
            },
        });
        self
    }

    /// Adds a queued submission of tenant `name` with `tasks` at time
    /// `at`: the serving layer decides it in batched admission rounds
    /// under backpressure, honouring `floor` and expiring after
    /// `timeout`.
    #[must_use]
    pub fn submit(
        mut self,
        at: Time,
        name: impl Into<String>,
        tasks: Vec<TaskSpec>,
        floor: QosFloor,
        timeout: Span,
    ) -> ChurnPlan {
        self.push(ChurnEvent {
            at,
            action: ChurnAction::Submit {
                name: name.into(),
                tasks,
                floor,
                timeout,
            },
        });
        self
    }

    /// Adds a departure of tenant `name` at time `at`.
    #[must_use]
    pub fn depart(mut self, at: Time, name: impl Into<String>) -> ChurnPlan {
        self.push(ChurnEvent {
            at,
            action: ChurnAction::Depart { name: name.into() },
        });
        self
    }

    /// Adds an already-built event, keeping the plan time-sorted with
    /// stable order among equal times.
    pub fn push(&mut self, event: ChurnEvent) {
        // Insert after the last event with `at <= event.at` (stable).
        let idx = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(idx, event);
    }

    /// The events in replay order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan scripts no churn at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::Span;

    fn task() -> TaskSpec {
        TaskSpec::builder("τ")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(10))
            .windup(Span::from_millis(10))
            .build()
            .unwrap()
    }

    #[test]
    fn events_are_time_sorted_regardless_of_insertion_order() {
        let plan = ChurnPlan::new()
            .depart(Time::from_nanos(500_000_000), "a")
            .arrive(Time::ZERO, "a", vec![task()])
            .arrive(Time::from_nanos(200_000_000), "b", vec![task()]);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![0, 200_000_000, 500_000_000]);
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let t = Time::from_nanos(100_000_000);
        let plan = ChurnPlan::new()
            .arrive(t, "first", vec![task()])
            .arrive(t, "second", vec![task()])
            .depart(t, "first");
        let names: Vec<&str> = plan
            .events()
            .iter()
            .map(|e| match &e.action {
                ChurnAction::Arrive { name, .. }
                | ChurnAction::Submit { name, .. }
                | ChurnAction::Depart { name } => name.as_str(),
            })
            .collect();
        assert_eq!(names, vec!["first", "second", "first"]);
        assert!(matches!(
            plan.events()[2].action,
            ChurnAction::Depart { .. }
        ));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = ChurnPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.events().is_empty());
    }
}
