//! # rtseed-sim
//!
//! Discrete-event many-core simulation substrate for RT-Seed.
//!
//! The paper evaluates RT-Seed on a 228-hardware-thread Xeon Phi that this
//! reproduction environment does not have, so this crate provides the
//! machine model the middleware runs on instead:
//!
//! * a deterministic **event queue** ([`eventq`]) with stable FIFO ordering
//!   of simultaneous events,
//! * per-hardware-thread **SCHED_FIFO ready queues** ([`readyq`]) mirroring
//!   Linux's 99 priority levels with FIFO order within a level (paper
//!   Fig. 5's "double circular linked list" queues),
//! * one-shot **optional-deadline timers** with cancellation ([`timer`],
//!   the `timer_settime` analogue of paper Fig. 7),
//! * the three **background loads** of §V-B (`NoLoad`, `CpuLoad`,
//!   `CpuMemoryLoad`) ([`load`]),
//! * a calibrated **overhead/contention model** ([`overhead`]) producing the
//!   four overheads of Fig. 9 (Δm, Δb, Δs, Δe) from mechanistic inputs
//!   (number of parallel optional parts, distinct cores touched, SMT
//!   occupancy, cache pollution), and
//! * a deterministic **fault plan** ([`fault`]): seeded, replayable WCET
//!   overruns, optional-deadline timer faults and CPU stall windows that
//!   the executors inject through the event queue, and
//! * a deterministic **tenant-churn plan** ([`churn`]): scripted tenant
//!   arrivals and departures the serving layer replays against its online
//!   admission test.
//!
//! The middleware crate (`rtseed`) drives this machine with the *same*
//! scheduler state machine it uses on real Linux; only the clock and the
//! cost of each primitive differ.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chaos;
pub mod churn;
pub mod eventq;
pub mod fault;
pub mod load;
pub mod overhead;
pub mod readyq;
pub mod timer;

pub use chaos::{chaos_plan, ChaosConfig, ChaosPlan};
pub use churn::{ChurnAction, ChurnEvent, ChurnPlan};
pub use eventq::EventQueue;
pub use fault::{
    CpuStall, FaultPlan, FaultTarget, JobWindow, RandomOverruns, TimerFault, TimerFaultSpec,
    WcetFault,
};
pub use load::BackgroundLoad;
pub use overhead::{Calibration, OverheadKind, OverheadModel, OverheadSample};
pub use readyq::FifoReadyQueue;
pub use timer::{TimerHandle, TimerWheel};
