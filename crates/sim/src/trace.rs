//! Execution traces: a timestamped record of everything the simulated
//! middleware did, for assertions in tests and for the example binaries'
//! schedule dumps.

use core::fmt;

use rtseed_model::{HwThreadId, JobId, OptionalOutcome, PartId, Span, Time};
use serde::{Deserialize, Serialize};

use crate::fault::{FaultTarget, TimerFault};

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job was released (periodic release or initial synchronous release).
    JobReleased {
        /// The released job.
        job: JobId,
    },
    /// The mandatory part began executing on `hw`.
    MandatoryStarted {
        /// The job.
        job: JobId,
        /// Pinned hardware thread.
        hw: HwThreadId,
    },
    /// The mandatory part completed.
    MandatoryCompleted {
        /// The job.
        job: JobId,
    },
    /// An optional part began executing on `hw`.
    OptionalStarted {
        /// The job.
        job: JobId,
        /// Which parallel optional part.
        part: PartId,
        /// The hardware thread it was placed on.
        hw: HwThreadId,
    },
    /// An optional part reached a terminal state.
    OptionalEnded {
        /// The job.
        job: JobId,
        /// Which parallel optional part.
        part: PartId,
        /// How it ended.
        outcome: OptionalOutcome,
        /// How much execution it achieved.
        achieved: Span,
    },
    /// The wind-up part began executing.
    WindupStarted {
        /// The job.
        job: JobId,
    },
    /// The wind-up part completed.
    WindupCompleted {
        /// The job.
        job: JobId,
        /// Whether the deadline was met.
        deadline_met: bool,
    },
    /// The optional-deadline timer fired for a job.
    OptionalDeadlineExpired {
        /// The job.
        job: JobId,
    },
    /// The fault plan inflated a real-time part's execution demand.
    WcetFaultInjected {
        /// The job.
        job: JobId,
        /// Which part overruns.
        target: FaultTarget,
        /// Demand multiplier applied.
        factor: f64,
    },
    /// The fault plan perturbed the job's optional-deadline timer.
    TimerFaultInjected {
        /// The job.
        job: JobId,
        /// The injected fault.
        fault: TimerFault,
    },
    /// A hardware thread entered a planned stall window.
    CpuStallStarted {
        /// The stalled hardware thread.
        hw: HwThreadId,
        /// Stall length.
        duration: Span,
    },
    /// The overload supervisor cut a real-time part at its budget.
    BudgetCut {
        /// The job.
        job: JobId,
        /// Which part was cut.
        target: FaultTarget,
    },
    /// The overload supervisor quarantined the job's task (its optional
    /// parts are skipped until the task proves healthy again).
    TaskQuarantined {
        /// The job whose overrun tripped the quarantine.
        job: JobId,
    },
    /// The overload supervisor switched the system to degraded mode
    /// (mandatory + wind-up only).
    DegradedModeEntered,
    /// The overload supervisor recovered the system to normal mode.
    DegradedModeExited,
}

/// A time-ordered trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<(Time, TraceEvent)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event at `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` precedes the last recorded event:
    /// traces are append-only in time order.
    pub fn record(&mut self, at: Time, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|(t, _)| *t <= at),
            "trace must be recorded in time order"
        );
        self.events.push((at, event));
    }

    /// All events in time order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning `job`, in time order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.events.iter().filter(move |(_, e)| match e {
            TraceEvent::JobReleased { job: j }
            | TraceEvent::MandatoryStarted { job: j, .. }
            | TraceEvent::MandatoryCompleted { job: j }
            | TraceEvent::OptionalStarted { job: j, .. }
            | TraceEvent::OptionalEnded { job: j, .. }
            | TraceEvent::WindupStarted { job: j }
            | TraceEvent::WindupCompleted { job: j, .. }
            | TraceEvent::OptionalDeadlineExpired { job: j }
            | TraceEvent::WcetFaultInjected { job: j, .. }
            | TraceEvent::TimerFaultInjected { job: j, .. }
            | TraceEvent::BudgetCut { job: j, .. }
            | TraceEvent::TaskQuarantined { job: j } => *j == job,
            TraceEvent::CpuStallStarted { .. }
            | TraceEvent::DegradedModeEntered
            | TraceEvent::DegradedModeExited => false,
        })
    }

    /// The time of the first event matching `pred`, if any.
    pub fn first_time(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> Option<Time> {
        self.events
            .iter()
            .find(|(_, e)| pred(e))
            .map(|(t, _)| *t)
    }

    /// Counts events matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "{t}: {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtseed_model::TaskId;

    fn job(seq: u64) -> JobId {
        JobId {
            task: TaskId(0),
            seq,
        }
    }

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new();
        tr.record(t(0), TraceEvent::JobReleased { job: job(0) });
        tr.record(
            t(10),
            TraceEvent::MandatoryStarted {
                job: job(0),
                hw: HwThreadId(0),
            },
        );
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
        assert_eq!(tr.events()[0].0, t(0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order() {
        let mut tr = Trace::new();
        tr.record(t(10), TraceEvent::JobReleased { job: job(0) });
        tr.record(t(5), TraceEvent::JobReleased { job: job(1) });
    }

    #[test]
    fn filters_by_job() {
        let mut tr = Trace::new();
        tr.record(t(0), TraceEvent::JobReleased { job: job(0) });
        tr.record(t(1), TraceEvent::JobReleased { job: job(1) });
        tr.record(t(2), TraceEvent::MandatoryCompleted { job: job(0) });
        assert_eq!(tr.for_job(job(0)).count(), 2);
        assert_eq!(tr.for_job(job(1)).count(), 1);
    }

    #[test]
    fn first_time_and_count() {
        let mut tr = Trace::new();
        tr.record(t(3), TraceEvent::JobReleased { job: job(0) });
        tr.record(t(7), TraceEvent::OptionalDeadlineExpired { job: job(0) });
        assert_eq!(
            tr.first_time(|e| matches!(e, TraceEvent::OptionalDeadlineExpired { .. })),
            Some(t(7))
        );
        assert_eq!(tr.count(|e| matches!(e, TraceEvent::JobReleased { .. })), 1);
        assert_eq!(
            tr.first_time(|e| matches!(e, TraceEvent::WindupStarted { .. })),
            None
        );
    }

    #[test]
    fn display_lists_events() {
        let mut tr = Trace::new();
        tr.record(t(0), TraceEvent::JobReleased { job: job(0) });
        let s = tr.to_string();
        assert!(s.contains("JobReleased"), "{s}");
    }
}
