//! Background loads of the paper's overhead measurements (§V-B).
//!
//! * **NoLoad** — no background tasks;
//! * **CpuLoad** — an infinite-loop task on every hardware thread (heavy
//!   branch-unit pressure, no memory traffic);
//! * **CpuMemoryLoad** — 512 KiB (one L2's worth) read/write loops on every
//!   hardware thread, polluting L1/L2 so real work misses to memory.
//!
//! In the simulator a load is a *machine condition* consulted by the
//! overhead model rather than actual spinning threads: it determines SMT
//! sibling occupancy and cache pollution, the two mechanisms the paper
//! identifies as driving its measured overhead differences.

use core::fmt;

use serde::{Deserialize, Serialize};

/// The background-load condition of an overhead experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackgroundLoad {
    /// No background tasks are executed.
    #[default]
    NoLoad,
    /// Infinite CPU-bound loops on all hardware threads.
    CpuLoad,
    /// L2-sized (512 KiB) read/write loops on all hardware threads,
    /// polluting the caches.
    CpuMemoryLoad,
}

impl BackgroundLoad {
    /// All three conditions in the paper's presentation order.
    pub const ALL: [BackgroundLoad; 3] = [
        BackgroundLoad::NoLoad,
        BackgroundLoad::CpuLoad,
        BackgroundLoad::CpuMemoryLoad,
    ];

    /// `true` when background tasks occupy every hardware thread (any load
    /// other than [`BackgroundLoad::NoLoad`]): SMT siblings of real-time
    /// threads are then always busy.
    #[inline]
    pub const fn occupies_siblings(self) -> bool {
        !matches!(self, BackgroundLoad::NoLoad)
    }

    /// `true` when the load pollutes the caches so that real work misses
    /// L1/L2 (only [`BackgroundLoad::CpuMemoryLoad`]).
    #[inline]
    pub const fn pollutes_cache(self) -> bool {
        matches!(self, BackgroundLoad::CpuMemoryLoad)
    }

    /// `true` when the load saturates the per-core branch units (only
    /// [`BackgroundLoad::CpuLoad`] — the paper's explanation for Fig. 12's
    /// inversion, where `pthread_cond_signal`'s branch-heavy path suffers
    /// *more* under CpuLoad than under CpuMemoryLoad).
    #[inline]
    pub const fn saturates_branch_units(self) -> bool {
        matches!(self, BackgroundLoad::CpuLoad)
    }

    /// Short label used in harness output ("no-load", "cpu", "cpu-memory").
    pub const fn label(self) -> &'static str {
        match self {
            BackgroundLoad::NoLoad => "no-load",
            BackgroundLoad::CpuLoad => "cpu",
            BackgroundLoad::CpuMemoryLoad => "cpu-memory",
        }
    }
}

impl fmt::Display for BackgroundLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_three_conditions() {
        assert_eq!(BackgroundLoad::ALL.len(), 3);
        assert_eq!(BackgroundLoad::ALL[0], BackgroundLoad::NoLoad);
    }

    #[test]
    fn mechanism_flags() {
        assert!(!BackgroundLoad::NoLoad.occupies_siblings());
        assert!(BackgroundLoad::CpuLoad.occupies_siblings());
        assert!(BackgroundLoad::CpuMemoryLoad.occupies_siblings());

        assert!(!BackgroundLoad::NoLoad.pollutes_cache());
        assert!(!BackgroundLoad::CpuLoad.pollutes_cache());
        assert!(BackgroundLoad::CpuMemoryLoad.pollutes_cache());

        assert!(BackgroundLoad::CpuLoad.saturates_branch_units());
        assert!(!BackgroundLoad::CpuMemoryLoad.saturates_branch_units());
    }

    #[test]
    fn default_is_no_load() {
        assert_eq!(BackgroundLoad::default(), BackgroundLoad::NoLoad);
    }

    #[test]
    fn labels() {
        assert_eq!(BackgroundLoad::NoLoad.to_string(), "no-load");
        assert_eq!(BackgroundLoad::CpuLoad.to_string(), "cpu");
        assert_eq!(BackgroundLoad::CpuMemoryLoad.to_string(), "cpu-memory");
    }
}
