//! Deterministic discrete-event queue.
//!
//! An indexed binary min-heap over a payload slab with a freelist. Events
//! are delivered in time order, breaking ties by insertion order (FIFO),
//! which is what makes whole-simulation runs reproducible byte-for-byte
//! across repeats and platforms.
//!
//! # Why not `BinaryHeap`?
//!
//! The event loop is the simulator's hot path: every push/pop at 228
//! hardware threads goes through here. The slab layout buys two things the
//! plain `BinaryHeap<Reverse<(Time, u64, T)>>` it replaced did not have:
//!
//! * **Allocation-free steady state.** Payload slots are recycled through
//!   a freelist and the heap array only grows to the high-water mark of
//!   *pending* events, so after warm-up a push/pop cycle touches no
//!   allocator at all.
//! * **Single-word comparisons.** The heap orders `(Time, seq)` packed
//!   into one `u128` key (time in the high 64 bits, insertion sequence in
//!   the low 64), so sift operations compare one integer and move 32-byte
//!   entries instead of calling a composite comparator over full payloads.
//!
//! The ordering contract is unchanged and exact: keys are unique (the
//! sequence number is), `(time, seq)` is a total order, and a min-heap
//! pops a total order in sorted order — so pop order is precisely
//! time-then-FIFO, independent of internal heap layout.
//!
//! Fancier pop strategies were measured and rejected on the pop-dominated
//! simulator workload: a 4-ary heap (shallower, but the min-of-4 child
//! scan branch-mispredicts) and the bottom-up "Wegener" pop (fewer
//! comparisons, same memory traffic) both benchmarked at or below the
//! textbook binary sift, whose two-way compare compiles to branchless
//! selects.

use rtseed_model::Time;

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use rtseed_model::Time;
/// use rtseed_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_nanos(20), "late");
/// q.push(Time::from_nanos(10), "early-a");
/// q.push(Time::from_nanos(10), "early-b");
/// assert_eq!(q.pop(), Some((Time::from_nanos(10), "early-a")));
/// assert_eq!(q.pop(), Some((Time::from_nanos(10), "early-b")));
/// assert_eq!(q.pop(), Some((Time::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Implicit binary min-heap of `(key, slot)`: `key` packs
    /// `(time.as_nanos() << 64) | seq`, `slot` indexes `slots`.
    heap: Vec<(u128, u32)>,
    /// Payload slab; `None` marks a free slot (listed in `free`).
    slots: Vec<Option<T>>,
    /// Recycled slab indices, popped before the slab is grown.
    free: Vec<u32>,
    /// Monotonic insertion counter: the FIFO tie-breaker.
    seq: u64,
}

#[inline]
fn key(at: Time, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn key_time(key: u128) -> Time {
    Time::from_nanos((key >> 64) as u64)
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// An empty queue with room for `capacity` pending events before any
    /// heap or slab growth.
    pub fn with_capacity(capacity: usize) -> EventQueue<T> {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`. Amortized O(log n); allocates
    /// only when the pending-event count exceeds its previous high-water
    /// mark.
    pub fn push(&mut self, at: Time, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("< 2^32 pending events");
                self.slots.push(Some(payload));
                slot
            }
        };
        self.heap.push((key(at, seq), slot));
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, FIFO among equals.
    /// O(log n), allocation-free.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let &(key, slot) = self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let payload = self.slots[slot as usize].take().expect("occupied slot");
        self.free.push(slot);
        Some((key_time(key), payload))
    }

    /// The instant of the earliest pending event, if any. O(1).
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|&(key, _)| key_time(key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events (the insertion counter keeps running,
    /// so FIFO ordering spans a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }

    /// Restores the heap property upward from `pos`.
    #[inline]
    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[parent].0 <= entry.0 {
                break;
            }
            self.heap[pos] = self.heap[parent];
            pos = parent;
        }
        self.heap[pos] = entry;
    }

    /// Restores the heap property downward from `pos`.
    #[inline]
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        let entry = self.heap[pos];
        loop {
            let mut child = 2 * pos + 1;
            if child >= len {
                break;
            }
            let right = child + 1;
            if right < len && self.heap[right].0 < self.heap[child].0 {
                child = right;
            }
            if entry.0 <= self.heap[child].0 {
                break;
            }
            self.heap[pos] = self.heap[child];
            pos = child;
        }
        self.heap[pos] = entry;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(5), "b")));
        q.push(t(7), "c");
        q.push(t(7), "d");
        assert_eq!(q.pop(), Some((t(7), "c")));
        assert_eq!(q.pop(), Some((t(7), "d")));
        assert_eq!(q.pop(), Some((t(10), "a")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ());
        q.push(t(7), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(7)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn steady_state_recycles_capacity() {
        // After warm-up, a bounded pending-set workload must stay within
        // the allocated high-water mark: capacities never grow again.
        let mut q = EventQueue::with_capacity(8);
        for i in 0..8u64 {
            q.push(t(i), i);
        }
        let heap_cap = q.heap.capacity();
        let slab_cap = q.slots.capacity();
        let free_cap = q.free.capacity();
        for round in 1..1000u64 {
            for _ in 0..4 {
                q.pop().unwrap();
            }
            for i in 0..4u64 {
                q.push(t(round * 10 + i), i);
            }
            assert_eq!(q.heap.capacity(), heap_cap);
            assert_eq!(q.slots.capacity(), slab_cap);
            assert_eq!(q.free.capacity(), free_cap);
        }
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn fifo_survives_heap_churn() {
        // Equal-timestamp FIFO must hold even when pushes interleave with
        // pops that reshuffle the heap (the tie-break bug class the
        // differential proptest hammers on).
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        let mut next = 0u64;
        for _ in 0..50 {
            q.push(t(100), next);
            next += 1;
            q.push(t(50), next);
            next += 1;
            popped.push(q.pop().unwrap());
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        let mut expected = popped.clone();
        expected.sort_by_key(|&(at, seq)| (at, seq));
        assert_eq!(popped, expected, "pop order must be (time, insertion) order");
    }

    #[test]
    fn large_random_workload_matches_sorted_order() {
        // Deterministic LCG-driven stress: pop order equals the stable
        // sort of (time, insertion index).
        let mut state = 0x1234_5678_u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for i in 0..2000u64 {
            let at = rng() % 64; // dense timestamps: many ties
            q.push(t(at), i);
            reference.push((at, i));
        }
        reference.sort(); // stable on (time, insertion index)
        for &(at, i) in &reference {
            assert_eq!(q.pop(), Some((t(at), i)));
        }
        assert!(q.is_empty());
    }
}
