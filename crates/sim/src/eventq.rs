//! Deterministic discrete-event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers
//! events in time order, breaking ties by insertion order (FIFO), which is
//! what makes whole-simulation runs reproducible byte-for-byte across
//! repeats and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtseed_model::Time;

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use rtseed_model::Time;
/// use rtseed_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_nanos(20), "late");
/// q.push(Time::from_nanos(10), "early-a");
/// q.push(Time::from_nanos(10), "early-b");
/// assert_eq!(q.pop(), Some((Time::from_nanos(10), "early-a")));
/// assert_eq!(q.pop(), Some((Time::from_nanos(10), "early-b")));
/// assert_eq!(q.pop(), Some((Time::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: Time, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Removes and returns the earliest event, FIFO among equals.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(5), "b")));
        q.push(t(7), "c");
        q.push(t(7), "d");
        assert_eq!(q.pop(), Some((t(7), "c")));
        assert_eq!(q.pop(), Some((t(7), "d")));
        assert_eq!(q.pop(), Some((t(10), "a")));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ());
        q.push(t(7), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(7)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }
}
