//! Deterministic fault injection for the simulation substrate.
//!
//! A [`FaultPlan`] describes *when and how the machine misbehaves*:
//! WCET overruns of real-time parts (a mandatory or wind-up computation
//! takes a multiple of its declared budget), optional-deadline timer
//! faults (latency spikes or a lost one-shot timer, the failure family
//! behind Table I's signal-mask defect), and CPU stall windows (an SMI /
//! thermal-throttle analogue during which a hardware thread executes
//! nothing).
//!
//! Every query is a **pure function** of the plan — explicit fault specs
//! plus a seed-keyed hash for the randomized component — so a run under a
//! fault plan is exactly as deterministic and replayable as a run without
//! one: same plan, same trace, bit for bit, regardless of the order in
//! which the executor asks. Faults are *injected* here but *observed and
//! survived* in the executors (`rtseed`'s overload supervisor), which is
//! what turns the imprecise-computation model's optional parts into a
//! load-shedding safety valve.

use rtseed_model::{Span, Time};
use serde::{Deserialize, Serialize};

/// Which real-time part of a job a WCET fault applies to.
///
/// Optional parts are deliberately not a target: in the imprecise model
/// they carry no WCET guarantee — an optional part that runs long is
/// simply terminated at the optional deadline, which is the model's
/// built-in fault absorption. Faults that threaten deadlines are faults
/// in the *guaranteed* parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The job's mandatory part.
    Mandatory,
    /// The job's wind-up part.
    Windup,
}

/// A fault of the one-shot optional-deadline timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimerFault {
    /// The timer fires late by the given span (interrupt latency spike).
    Delay(Span),
    /// The timer never fires for this job (lost one-shot — the transient
    /// version of the Table I signal-mask defect).
    Lost,
}

/// A half-open window of job sequence numbers `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobWindow {
    /// First affected job sequence number.
    pub from: u64,
    /// First job sequence number no longer affected.
    pub until: u64,
}

impl JobWindow {
    /// A window covering every job.
    pub const ALL: JobWindow = JobWindow {
        from: 0,
        until: u64::MAX,
    };

    /// The window `[from, until)`.
    pub fn new(from: u64, until: u64) -> JobWindow {
        JobWindow { from, until }
    }

    /// Whether `seq` falls inside the window.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.from && seq < self.until
    }
}

/// An explicit WCET overrun: the targeted part's execution demand is
/// multiplied by `factor` for matching jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WcetFault {
    /// Task index the fault applies to; `None` applies to every task.
    pub task: Option<u32>,
    /// Affected jobs.
    pub jobs: JobWindow,
    /// Which real-time part overruns.
    pub target: FaultTarget,
    /// Demand multiplier (> 0; 1.0 is a no-op, 3.0 is a 3× overrun).
    pub factor: f64,
}

/// An explicit optional-deadline timer fault for matching jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimerFaultSpec {
    /// Task index the fault applies to; `None` applies to every task.
    pub task: Option<u32>,
    /// Affected jobs.
    pub jobs: JobWindow,
    /// The fault.
    pub fault: TimerFault,
}

/// A window during which one hardware thread executes nothing (SMI,
/// thermal throttle, hypervisor steal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuStall {
    /// The stalled hardware thread.
    pub hw: u32,
    /// Stall onset (simulation time).
    pub at: Time,
    /// Stall length.
    pub duration: Span,
}

/// Seeded random WCET overruns: each `(task, job)` pair independently
/// overruns with `probability`, by a factor drawn uniformly from
/// `[min_factor, max_factor]`. Both the decision and the factor are
/// derived by hashing the plan seed with the job coordinates, never from
/// mutable generator state — replay cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomOverruns {
    /// Per-job overrun probability in `[0, 1]`.
    pub probability: f64,
    /// Smallest overrun factor.
    pub min_factor: f64,
    /// Largest overrun factor.
    pub max_factor: f64,
    /// Which real-time part overruns.
    pub target: FaultTarget,
}

/// A deterministic, replayable schedule of machine faults.
///
/// Build with [`FaultPlan::new`] and the `with_*` methods; query from an
/// executor via [`wcet_factor`](FaultPlan::wcet_factor),
/// [`timer_fault`](FaultPlan::timer_fault) and
/// [`stalls`](FaultPlan::stalls).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    wcet: Vec<WcetFault>,
    timers: Vec<TimerFaultSpec>,
    stalls: Vec<CpuStall>,
    random: Option<RandomOverruns>,
}

impl FaultPlan {
    /// An empty plan with the given randomness seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The no-fault plan (what executors run by default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The plan's randomness seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.wcet.is_empty()
            && self.timers.is_empty()
            && self.stalls.is_empty()
            && self.random.is_none()
    }

    /// Adds an explicit WCET overrun.
    ///
    /// # Panics
    ///
    /// Panics if `fault.factor` is not strictly positive.
    pub fn with_wcet_fault(mut self, fault: WcetFault) -> FaultPlan {
        assert!(
            fault.factor > 0.0 && fault.factor.is_finite(),
            "WCET factor must be finite and > 0"
        );
        self.wcet.push(fault);
        self
    }

    /// Adds an explicit timer fault.
    pub fn with_timer_fault(mut self, fault: TimerFaultSpec) -> FaultPlan {
        self.timers.push(fault);
        self
    }

    /// Adds a CPU stall window.
    pub fn with_cpu_stall(mut self, stall: CpuStall) -> FaultPlan {
        self.stalls.push(stall);
        self
    }

    /// Enables seeded random overruns.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the factor range
    /// is empty or non-positive.
    pub fn with_random_overruns(mut self, random: RandomOverruns) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&random.probability),
            "probability must be within [0, 1]"
        );
        assert!(
            random.min_factor > 0.0 && random.max_factor >= random.min_factor,
            "factor range must be positive and non-empty"
        );
        self.random = Some(random);
        self
    }

    /// The demand multiplier for `target` of job `seq` of `task` — the
    /// product of every matching explicit fault and the random component.
    /// 1.0 means no fault.
    pub fn wcet_factor(&self, task: u32, seq: u64, target: FaultTarget) -> f64 {
        let mut factor = 1.0;
        for f in &self.wcet {
            if f.target == target
                && f.jobs.contains(seq)
                && f.task.is_none_or(|t| t == task)
            {
                factor *= f.factor;
            }
        }
        if let Some(r) = self.random {
            if r.target == target {
                let h = self.hash(task, seq, target as u64 | 0x100);
                if unit(h) < r.probability {
                    let u = unit(self.hash(task, seq, target as u64 | 0x200));
                    factor *= r.min_factor + u * (r.max_factor - r.min_factor);
                }
            }
        }
        factor
    }

    /// The timer fault (if any) for job `seq` of `task`. When several
    /// specs match, `Lost` dominates; otherwise delays add.
    pub fn timer_fault(&self, task: u32, seq: u64) -> Option<TimerFault> {
        let mut delay: Option<Span> = None;
        for f in &self.timers {
            if !f.jobs.contains(seq) || f.task.is_some_and(|t| t != task) {
                continue;
            }
            match f.fault {
                TimerFault::Lost => return Some(TimerFault::Lost),
                TimerFault::Delay(d) => {
                    delay = Some(delay.unwrap_or(Span::ZERO) + d);
                }
            }
        }
        delay.map(TimerFault::Delay)
    }

    /// All planned CPU stall windows.
    pub fn stalls(&self) -> &[CpuStall] {
        &self.stalls
    }

    fn hash(&self, task: u32, seq: u64, salt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(task).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seq.wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps 64 hash bits to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.wcet_factor(0, 0, FaultTarget::Mandatory), 1.0);
        assert_eq!(p.timer_fault(3, 7), None);
        assert!(p.stalls().is_empty());
    }

    #[test]
    fn explicit_wcet_fault_scopes_to_task_and_jobs() {
        let p = FaultPlan::new(1).with_wcet_fault(WcetFault {
            task: Some(2),
            jobs: JobWindow::new(5, 10),
            target: FaultTarget::Mandatory,
            factor: 3.0,
        });
        assert_eq!(p.wcet_factor(2, 5, FaultTarget::Mandatory), 3.0);
        assert_eq!(p.wcet_factor(2, 9, FaultTarget::Mandatory), 3.0);
        assert_eq!(p.wcet_factor(2, 10, FaultTarget::Mandatory), 1.0);
        assert_eq!(p.wcet_factor(1, 5, FaultTarget::Mandatory), 1.0);
        assert_eq!(p.wcet_factor(2, 5, FaultTarget::Windup), 1.0);
    }

    #[test]
    fn overlapping_faults_multiply() {
        let f = |factor| WcetFault {
            task: None,
            jobs: JobWindow::ALL,
            target: FaultTarget::Windup,
            factor,
        };
        let p = FaultPlan::new(0).with_wcet_fault(f(2.0)).with_wcet_fault(f(1.5));
        assert!((p.wcet_factor(0, 0, FaultTarget::Windup) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn timer_lost_dominates_delays() {
        let p = FaultPlan::new(0)
            .with_timer_fault(TimerFaultSpec {
                task: None,
                jobs: JobWindow::ALL,
                fault: TimerFault::Delay(Span::from_millis(5)),
            })
            .with_timer_fault(TimerFaultSpec {
                task: Some(0),
                jobs: JobWindow::new(2, 3),
                fault: TimerFault::Lost,
            });
        assert_eq!(
            p.timer_fault(0, 1),
            Some(TimerFault::Delay(Span::from_millis(5)))
        );
        assert_eq!(p.timer_fault(0, 2), Some(TimerFault::Lost));
        assert_eq!(
            p.timer_fault(1, 2),
            Some(TimerFault::Delay(Span::from_millis(5)))
        );
    }

    #[test]
    fn delays_accumulate() {
        let d = |ms| TimerFaultSpec {
            task: None,
            jobs: JobWindow::ALL,
            fault: TimerFault::Delay(Span::from_millis(ms)),
        };
        let p = FaultPlan::new(0).with_timer_fault(d(3)).with_timer_fault(d(4));
        assert_eq!(
            p.timer_fault(0, 0),
            Some(TimerFault::Delay(Span::from_millis(7)))
        );
    }

    #[test]
    fn random_overruns_are_pure_in_the_seed() {
        let plan = |seed| {
            FaultPlan::new(seed).with_random_overruns(RandomOverruns {
                probability: 0.5,
                min_factor: 2.0,
                max_factor: 4.0,
                target: FaultTarget::Mandatory,
            })
        };
        let (a, b, c) = (plan(7), plan(7), plan(8));
        let mut hit = 0;
        let mut diverged = false;
        for seq in 0..200 {
            let fa = a.wcet_factor(0, seq, FaultTarget::Mandatory);
            assert_eq!(fa, b.wcet_factor(0, seq, FaultTarget::Mandatory));
            if fa != 1.0 {
                hit += 1;
                assert!((2.0..=4.0).contains(&fa), "{fa}");
            }
            if fa != c.wcet_factor(0, seq, FaultTarget::Mandatory) {
                diverged = true;
            }
        }
        assert!((60..=140).contains(&hit), "p=0.5 over 200 jobs: {hit}");
        assert!(diverged, "different seeds must differ somewhere");
        // The untargeted part is never faulted.
        for seq in 0..200 {
            assert_eq!(a.wcet_factor(0, seq, FaultTarget::Windup), 1.0);
        }
    }

    #[test]
    fn query_order_does_not_matter() {
        let p = FaultPlan::new(42).with_random_overruns(RandomOverruns {
            probability: 0.3,
            min_factor: 1.5,
            max_factor: 2.0,
            target: FaultTarget::Mandatory,
        });
        let forward: Vec<f64> = (0..50)
            .map(|s| p.wcet_factor(1, s, FaultTarget::Mandatory))
            .collect();
        let backward: Vec<f64> = (0..50)
            .rev()
            .map(|s| p.wcet_factor(1, s, FaultTarget::Mandatory))
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "factor must be finite")]
    fn rejects_nonpositive_factor() {
        let _ = FaultPlan::new(0).with_wcet_fault(WcetFault {
            task: None,
            jobs: JobWindow::ALL,
            target: FaultTarget::Mandatory,
            factor: 0.0,
        });
    }
}
