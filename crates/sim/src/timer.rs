//! One-shot timers with cancellation — the simulator analogue of the
//! POSIX `timer_create` / `timer_settime(TIMER_ABSTIME)` /
//! `timer_settime(…, 0, &stop, …)` sequence the middleware uses for
//! optional-deadline timers (paper Fig. 7).
//!
//! Cancellation is implemented by generation counting: `cancel` bumps the
//! handle's generation so an already-scheduled expiry is recognized as
//! stale when it fires, exactly like stopping a one-shot POSIX timer whose
//! signal may already be in flight.

use rtseed_model::Time;
use serde::{Deserialize, Serialize};

use crate::eventq::EventQueue;

/// Identifies one armed timer instance (timer id + arming generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimerHandle {
    id: u32,
    generation: u32,
}

impl TimerHandle {
    /// The underlying timer id (stable across re-arms of the same timer).
    #[inline]
    pub fn timer_id(self) -> u32 {
        self.id
    }
}

/// A set of one-shot timers multiplexed onto an [`EventQueue`].
///
/// `T` is the payload delivered on expiry (e.g. "terminate the optional
/// parts of job J").
///
/// # Examples
///
/// ```
/// use rtseed_model::Time;
/// use rtseed_sim::TimerWheel;
///
/// let mut w = TimerWheel::new();
/// let h = w.arm(Time::from_nanos(100), "optional deadline");
/// // Completing early stops the timer, like timer_settime(…, 0, &stop, …).
/// w.cancel(h);
/// assert_eq!(w.pop_expired(Time::from_nanos(200)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerWheel<T> {
    queue: EventQueue<(TimerHandle, T)>,
    generations: Vec<u32>,
    armed: Vec<bool>,
}

impl<T> TimerWheel<T> {
    /// An empty timer wheel.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            queue: EventQueue::new(),
            generations: Vec::new(),
            armed: Vec::new(),
        }
    }

    /// Arms a fresh one-shot timer expiring at `at` with `payload`.
    pub fn arm(&mut self, at: Time, payload: T) -> TimerHandle {
        let id = self.generations.len() as u32;
        self.generations.push(0);
        self.armed.push(true);
        let handle = TimerHandle { id, generation: 0 };
        self.queue.push(at, (handle, payload));
        handle
    }

    /// Re-arms an existing timer id (bumping its generation so any stale
    /// expiry is ignored) to expire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the handle's id was never issued by this wheel.
    pub fn rearm(&mut self, handle: TimerHandle, at: Time, payload: T) -> TimerHandle {
        let idx = handle.id as usize;
        self.generations[idx] += 1;
        self.armed[idx] = true;
        let new = TimerHandle {
            id: handle.id,
            generation: self.generations[idx],
        };
        self.queue.push(at, (new, payload));
        new
    }

    /// Stops a one-shot timer. Expiries already queued for this handle are
    /// discarded when they surface. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the handle's id was never issued by this wheel.
    pub fn cancel(&mut self, handle: TimerHandle) {
        let idx = handle.id as usize;
        if self.generations[idx] == handle.generation {
            self.armed[idx] = false;
        }
    }

    /// Pops the next *live* expiry at or before `now`, skipping cancelled
    /// and stale entries. Returns `(expiry time, payload)`.
    pub fn pop_expired(&mut self, now: Time) -> Option<(Time, T)> {
        while let Some(at) = self.queue.peek_time() {
            if at > now {
                return None;
            }
            let (at, (h, payload)) = self.queue.pop().expect("peeked");
            let idx = h.id as usize;
            if self.armed[idx] && self.generations[idx] == h.generation {
                self.armed[idx] = false; // one-shot
                return Some((at, payload));
            }
        }
        None
    }

    /// The earliest pending expiry instant (live or stale — callers use it
    /// only as a lower bound for time advancement).
    pub fn next_expiry(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// `true` if the given handle is still armed (not expired, not
    /// cancelled, not superseded by a re-arm).
    ///
    /// # Panics
    ///
    /// Panics if the handle's id was never issued by this wheel.
    pub fn is_armed(&self, handle: TimerHandle) -> bool {
        let idx = handle.id as usize;
        self.armed[idx] && self.generations[idx] == handle.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn fires_at_expiry() {
        let mut w = TimerWheel::new();
        let h = w.arm(t(100), "x");
        assert!(w.is_armed(h));
        assert_eq!(w.pop_expired(t(99)), None);
        assert_eq!(w.pop_expired(t(100)), Some((t(100), "x")));
        assert!(!w.is_armed(h));
        // One-shot: does not fire again.
        assert_eq!(w.pop_expired(t(1000)), None);
    }

    #[test]
    fn cancel_suppresses_expiry() {
        let mut w = TimerWheel::new();
        let h = w.arm(t(50), 1);
        w.cancel(h);
        assert!(!w.is_armed(h));
        assert_eq!(w.pop_expired(t(100)), None);
        // Idempotent.
        w.cancel(h);
    }

    #[test]
    fn rearm_supersedes_old_expiry() {
        let mut w = TimerWheel::new();
        let h0 = w.arm(t(50), "old");
        let h1 = w.rearm(h0, t(80), "new");
        assert!(!w.is_armed(h0));
        assert!(w.is_armed(h1));
        // The stale t=50 entry is skipped; the live one fires at 80.
        assert_eq!(w.pop_expired(t(100)), Some((t(80), "new")));
    }

    #[test]
    fn cancel_old_handle_does_not_kill_rearmed() {
        let mut w = TimerWheel::new();
        let h0 = w.arm(t(50), "old");
        let h1 = w.rearm(h0, t(60), "new");
        w.cancel(h0); // stale handle: no effect on the new arming
        assert!(w.is_armed(h1));
        assert_eq!(w.pop_expired(t(100)), Some((t(60), "new")));
    }

    #[test]
    fn multiple_timers_fire_in_order() {
        let mut w = TimerWheel::new();
        w.arm(t(30), 'c');
        w.arm(t(10), 'a');
        w.arm(t(20), 'b');
        assert_eq!(w.next_expiry(), Some(t(10)));
        assert_eq!(w.pop_expired(t(100)), Some((t(10), 'a')));
        assert_eq!(w.pop_expired(t(100)), Some((t(20), 'b')));
        assert_eq!(w.pop_expired(t(100)), Some((t(30), 'c')));
        assert_eq!(w.pop_expired(t(100)), None);
    }

    #[test]
    fn simultaneous_expiries_fifo() {
        let mut w = TimerWheel::new();
        w.arm(t(10), 1);
        w.arm(t(10), 2);
        assert_eq!(w.pop_expired(t(10)), Some((t(10), 1)));
        assert_eq!(w.pop_expired(t(10)), Some((t(10), 2)));
    }
}
