//! Calibrated overhead/contention model producing the four middleware
//! overheads of the paper's Fig. 9:
//!
//! * **Δm** — release → beginning of the mandatory part,
//! * **Δb** — signalling all parallel optional threads
//!   (`pthread_cond_signal` loop; O(npᵢ), paper §V-B),
//! * **Δs** — switching the mandatory thread to the first optional thread,
//! * **Δe** — optional deadline → beginning of the wind-up part (timer
//!   interrupt handling + `siglongjmp` stack restore + wake-up signal;
//!   O(npᵢ) and the largest of the four, paper §V-B).
//!
//! Every cost is computed from *mechanistic inputs* — the number of
//! parallel optional parts, whether a termination hop crosses cores, SMT
//! sibling occupancy and cache pollution from the background load — with
//! constants in [`Calibration`] set from the magnitudes on the paper's
//! figure axes. EXPERIMENTS.md verifies the resulting *shapes* (constant
//! vs linear growth, load orderings, policy orderings), which are what the
//! model is accountable for; absolute values are calibration.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtseed_model::{Span, Topology};
use serde::{Deserialize, Serialize};

use crate::load::BackgroundLoad;

/// Which of the four measured overheads a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverheadKind {
    /// Δm: release time → beginning of the mandatory part.
    BeginMandatory,
    /// Δb: signalling all parallel optional threads.
    BeginOptional,
    /// Δs: switching the mandatory thread to the optional thread.
    SwitchToOptional,
    /// Δe: optional deadline → beginning of the wind-up part.
    EndOptional,
}

impl OverheadKind {
    /// All four kinds in the paper's Fig. 9 order.
    pub const ALL: [OverheadKind; 4] = [
        OverheadKind::BeginMandatory,
        OverheadKind::BeginOptional,
        OverheadKind::SwitchToOptional,
        OverheadKind::EndOptional,
    ];

    /// The paper's symbol for the overhead ("Δm", "Δb", "Δs", "Δe").
    pub const fn symbol(self) -> &'static str {
        match self {
            OverheadKind::BeginMandatory => "Δm",
            OverheadKind::BeginOptional => "Δb",
            OverheadKind::SwitchToOptional => "Δs",
            OverheadKind::EndOptional => "Δe",
        }
    }
}

/// One measured overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadSample {
    /// Which overhead was measured.
    pub kind: OverheadKind,
    /// The measured span.
    pub value: Span,
}

/// Calibration constants (nanoseconds unless noted). Defaults are set so
/// that the simulated Xeon Phi reproduces the magnitudes on the axes of the
/// paper's Figs. 10–13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Δm base: timer wake-up + SCHED_FIFO pick with an idle machine.
    pub begin_mandatory_ns: u64,
    /// Δm multiplier when SMT siblings run background work.
    pub begin_mandatory_sibling_factor: f64,
    /// Δm additional multiplier when caches are polluted.
    pub begin_mandatory_cache_factor: f64,

    /// Δb: one `pthread_cond_signal` to a waiting optional thread.
    pub signal_ns: u64,
    /// Δb multiplier under branch-unit saturation (CpuLoad). The paper
    /// observes Δb is *worse* under CpuLoad than CpuMemoryLoad because the
    /// signal path is branch-heavy.
    pub signal_branch_factor: f64,
    /// Δb multiplier under cache pollution (CpuMemoryLoad).
    pub signal_cache_factor: f64,

    /// Δs base: one context switch on an idle core.
    pub switch_ns: u64,
    /// Δs per-optional-part slope on an idle machine (run-queue scan and
    /// sibling start-up grow with np).
    pub switch_per_part_ns: u64,
    /// Δs surge amplitude as the machine approaches full SMT occupancy
    /// (paper: "with 228 parallel optional parts ... a dramatic increase").
    pub switch_surge_ns: u64,
    /// Exponent of the surge ((np / max_np)^e).
    pub switch_surge_exponent: f64,
    /// Δs fixed value under CpuLoad (approximately constant, Fig. 11b).
    pub switch_loaded_cpu_ns: u64,
    /// Δs fixed value under CpuMemoryLoad (approximately constant, Fig. 11c).
    pub switch_loaded_mem_ns: u64,

    /// Δe: per-part termination (timer interrupt + `siglongjmp` restore +
    /// completion bookkeeping) on an idle machine.
    pub end_part_ns: u64,
    /// Δe per-part multiplier under CpuLoad.
    pub end_cpu_factor: f64,
    /// Δe per-part multiplier under CpuMemoryLoad (highest: the restore
    /// path is memory-bound, Fig. 13c).
    pub end_mem_factor: f64,
    /// Δe penalty when consecutive terminations hop between cores
    /// (cache-line transfer of task state), idle machine.
    pub end_cross_core_ns: u64,
    /// Cross-core penalty multiplier under CpuLoad.
    pub end_cross_core_cpu_factor: f64,
    /// Cross-core penalty multiplier under CpuMemoryLoad.
    pub end_cross_core_mem_factor: f64,

    /// Relative measurement jitter (uniform ±fraction), deterministic in
    /// the model's seed.
    pub jitter: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            begin_mandatory_ns: 50_000,            // ~50 µs   (Fig. 10a)
            begin_mandatory_sibling_factor: 3.0,   // ~150 µs  (Fig. 10b)
            begin_mandatory_cache_factor: 1.67,    // ~250 µs  (Fig. 10c)

            signal_ns: 26_000,                     // 228 × 26 µs ≈ 5.9 ms (Fig. 12a)
            signal_branch_factor: 1.75,            // ≈ 10.4 ms (Fig. 12b)
            signal_cache_factor: 1.35,             // ≈ 8.0 ms  (Fig. 12c)

            switch_ns: 10_000,
            switch_per_part_ns: 150,               // +34 µs at np = 228
            switch_surge_ns: 45_000,               // Fig. 11a's surge at 228
            switch_surge_exponent: 6.0,
            switch_loaded_cpu_ns: 45_000,          // flat ~45 µs (Fig. 11b)
            switch_loaded_mem_ns: 52_000,          // flat ~52 µs (Fig. 11c)

            end_part_ns: 110_000,                  // 228 × 110 µs ≈ 25 ms (Fig. 13a)
            end_cpu_factor: 1.30,                  // ≈ 33 ms base (Fig. 13b)
            end_mem_factor: 1.75,                  // ≈ 44 ms base (Fig. 13c)
            end_cross_core_ns: 5_000,              // policies ≈ equal unloaded
            end_cross_core_cpu_factor: 8.0,        // 40 µs/hop: OneByOne worst
            end_cross_core_mem_factor: 10.0,       // 50 µs/hop

            jitter: 0.05,
        }
    }
}

/// Stateful overhead sampler: calibration + machine condition + a
/// deterministic jitter stream.
#[derive(Debug)]
pub struct OverheadModel {
    cal: Calibration,
    topology: Topology,
    load: BackgroundLoad,
    rng: StdRng,
}

impl OverheadModel {
    /// Creates a model for `topology` under `load`, with jitter stream
    /// seeded by `seed` (same seed ⇒ identical samples).
    pub fn new(cal: Calibration, topology: Topology, load: BackgroundLoad, seed: u64) -> Self {
        OverheadModel {
            cal,
            topology,
            load,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The background load this model simulates.
    #[inline]
    pub fn load(&self) -> BackgroundLoad {
        self.load
    }

    /// The calibration in use.
    #[inline]
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    fn jittered(&mut self, ns: f64) -> Span {
        let j = self.cal.jitter;
        let f = if j > 0.0 {
            self.rng.random_range(1.0 - j..=1.0 + j)
        } else {
            1.0
        };
        Span::from_nanos((ns * f).max(0.0) as u64)
    }

    /// Δm: overhead between the release time and the beginning of the
    /// mandatory part. Depends on the machine condition but *not* on the
    /// number of optional parts (paper Fig. 10: "approximately constant,
    /// regardless of the number of parallel optional parts").
    pub fn begin_mandatory(&mut self) -> Span {
        let mut ns = self.cal.begin_mandatory_ns as f64;
        if self.load.occupies_siblings() {
            ns *= self.cal.begin_mandatory_sibling_factor;
        }
        if self.load.pollutes_cache() {
            ns *= self.cal.begin_mandatory_cache_factor;
        }
        self.jittered(ns)
    }

    /// Δb contribution of signalling *one* waiting optional thread.
    /// The full Δb for a job is the sum over its npᵢ parts — the O(npᵢ)
    /// loop of `pthread_cond_signal` calls in the mandatory thread.
    pub fn signal_one_optional(&mut self) -> Span {
        let mut ns = self.cal.signal_ns as f64;
        if self.load.saturates_branch_units() {
            ns *= self.cal.signal_branch_factor;
        }
        if self.load.pollutes_cache() {
            ns *= self.cal.signal_cache_factor;
        }
        self.jittered(ns)
    }

    /// Δs: switching the mandatory thread to the optional thread, given
    /// that `np` parallel optional parts exist machine-wide.
    ///
    /// Unloaded, the cost grows with np and surges near full SMT occupancy
    /// (Fig. 11a); under load the switch happens amid already-saturated
    /// run queues and is approximately constant (Figs. 11b–c).
    pub fn switch_to_optional(&mut self, np: usize) -> Span {
        let ns = match self.load {
            BackgroundLoad::NoLoad => {
                let max = self.topology.hw_threads() as f64;
                let frac = (np as f64 / max).min(1.0);
                self.cal.switch_ns as f64
                    + self.cal.switch_per_part_ns as f64 * np as f64
                    + self.cal.switch_surge_ns as f64 * frac.powf(self.cal.switch_surge_exponent)
            }
            BackgroundLoad::CpuLoad => self.cal.switch_loaded_cpu_ns as f64,
            BackgroundLoad::CpuMemoryLoad => self.cal.switch_loaded_mem_ns as f64,
        };
        self.jittered(ns)
    }

    /// Δe contribution of terminating *one* optional part. `cross_core` is
    /// whether this termination hops to a different core than the previous
    /// one in the termination sequence — the locality mechanism that makes
    /// OneByOne worst and AllByAll best under load (Figs. 13b–c).
    pub fn end_one_part(&mut self, cross_core: bool) -> Span {
        let mut ns = self.cal.end_part_ns as f64;
        match self.load {
            BackgroundLoad::NoLoad => {}
            BackgroundLoad::CpuLoad => ns *= self.cal.end_cpu_factor,
            BackgroundLoad::CpuMemoryLoad => ns *= self.cal.end_mem_factor,
        }
        if cross_core {
            let mut hop = self.cal.end_cross_core_ns as f64;
            match self.load {
                BackgroundLoad::NoLoad => {}
                BackgroundLoad::CpuLoad => hop *= self.cal.end_cross_core_cpu_factor,
                BackgroundLoad::CpuMemoryLoad => hop *= self.cal.end_cross_core_mem_factor,
            }
            ns += hop;
        }
        self.jittered(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(load: BackgroundLoad) -> OverheadModel {
        OverheadModel::new(
            Calibration::default(),
            Topology::xeon_phi_3120a(),
            load,
            42,
        )
    }

    fn mean_us(samples: impl Iterator<Item = Span>) -> f64 {
        let v: Vec<f64> = samples.map(|s| s.as_micros_f64()).collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = model(BackgroundLoad::CpuLoad);
        let mut b = model(BackgroundLoad::CpuLoad);
        for _ in 0..100 {
            assert_eq!(a.begin_mandatory(), b.begin_mandatory());
            assert_eq!(a.end_one_part(true), b.end_one_part(true));
        }
    }

    #[test]
    fn begin_mandatory_orders_by_load() {
        // Fig. 10: NoLoad < CpuLoad < CpuMemoryLoad.
        let none = mean_us((0..200).map(|_| model(BackgroundLoad::NoLoad).begin_mandatory()));
        let cpu = mean_us((0..200).map(|_| model(BackgroundLoad::CpuLoad).begin_mandatory()));
        let mem =
            mean_us((0..200).map(|_| model(BackgroundLoad::CpuMemoryLoad).begin_mandatory()));
        assert!(none < cpu && cpu < mem, "{none} {cpu} {mem}");
        // Magnitudes within the paper's 0–300 µs axis.
        assert!(none > 20.0 && mem < 300.0, "{none} {mem}");
    }

    #[test]
    fn begin_mandatory_independent_of_np() {
        // Δm takes no np argument at all: constancy is structural.
        let mut m = model(BackgroundLoad::NoLoad);
        let s = m.begin_mandatory();
        assert!(s > Span::ZERO);
    }

    #[test]
    fn signal_cost_cpu_exceeds_mem_exceeds_none() {
        // Fig. 12's inversion: CpuLoad > CpuMemoryLoad > NoLoad.
        let none =
            mean_us((0..200).map(|_| model(BackgroundLoad::NoLoad).signal_one_optional()));
        let cpu =
            mean_us((0..200).map(|_| model(BackgroundLoad::CpuLoad).signal_one_optional()));
        let mem = mean_us(
            (0..200).map(|_| model(BackgroundLoad::CpuMemoryLoad).signal_one_optional()),
        );
        assert!(cpu > mem && mem > none, "{cpu} {mem} {none}");
    }

    #[test]
    fn switch_grows_with_np_only_unloaded() {
        let mut m = model(BackgroundLoad::NoLoad);
        let small = mean_us((0..50).map(|_| m.switch_to_optional(4)));
        let large = mean_us((0..50).map(|_| m.switch_to_optional(228)));
        assert!(large > small * 3.0, "unloaded surge missing: {small} {large}");

        let mut c = model(BackgroundLoad::CpuLoad);
        let c_small = mean_us((0..50).map(|_| c.switch_to_optional(4)));
        let c_large = mean_us((0..50).map(|_| c.switch_to_optional(228)));
        assert!(
            (c_large - c_small).abs() < c_small * 0.2,
            "loaded Δs should be ~constant: {c_small} {c_large}"
        );
    }

    #[test]
    fn switch_surge_dominates_at_full_occupancy() {
        // Fig. 11a: dramatic increase at np = 228 relative to 171.
        let mut m = model(BackgroundLoad::NoLoad);
        let at_171 = mean_us((0..100).map(|_| m.switch_to_optional(171)));
        let at_228 = mean_us((0..100).map(|_| m.switch_to_optional(228)));
        assert!(at_228 > at_171 * 1.5, "{at_171} {at_228}");
    }

    #[test]
    fn end_part_mem_exceeds_cpu_exceeds_none() {
        // Fig. 13: CpuMemoryLoad > CpuLoad > NoLoad (opposite of Δb).
        let none = mean_us((0..200).map(|_| model(BackgroundLoad::NoLoad).end_one_part(false)));
        let cpu = mean_us((0..200).map(|_| model(BackgroundLoad::CpuLoad).end_one_part(false)));
        let mem =
            mean_us((0..200).map(|_| model(BackgroundLoad::CpuMemoryLoad).end_one_part(false)));
        assert!(mem > cpu && cpu > none, "{mem} {cpu} {none}");
    }

    #[test]
    fn cross_core_penalty_matters_under_load() {
        let mut m = model(BackgroundLoad::CpuMemoryLoad);
        let local = mean_us((0..200).map(|_| m.end_one_part(false)));
        let hop = mean_us((0..200).map(|_| m.end_one_part(true)));
        assert!(hop > local * 1.15, "{local} {hop}");

        // Unloaded the penalty is small (Fig. 13a: policies ≈ equal).
        let mut n = model(BackgroundLoad::NoLoad);
        let local_n = mean_us((0..200).map(|_| n.end_one_part(false)));
        let hop_n = mean_us((0..200).map(|_| n.end_one_part(true)));
        assert!(hop_n < local_n * 1.10, "{local_n} {hop_n}");
    }

    #[test]
    fn end_dominates_begin() {
        // Paper: "the overhead of ending the parallel optional parts is the
        // largest of all types of overhead" — per part, Δe >> Δb.
        let mut m = model(BackgroundLoad::NoLoad);
        let b = m.signal_one_optional();
        let e = m.end_one_part(false);
        assert!(e > b * 2);
    }

    #[test]
    fn kinds_and_symbols() {
        assert_eq!(OverheadKind::ALL.len(), 4);
        assert_eq!(OverheadKind::BeginMandatory.symbol(), "Δm");
        assert_eq!(OverheadKind::EndOptional.symbol(), "Δe");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let cal = Calibration {
            jitter: 0.0,
            ..Calibration::default()
        };
        let mut m = OverheadModel::new(
            cal,
            Topology::xeon_phi_3120a(),
            BackgroundLoad::NoLoad,
            0,
        );
        assert_eq!(m.begin_mandatory(), Span::from_micros(50));
        assert_eq!(m.signal_one_optional(), Span::from_micros(26));
    }
}
