//! Linux SCHED_FIFO ready-queue semantics (paper Fig. 5).
//!
//! Each processor in the kernel owns 99 FIFO queues, one per priority
//! level, with larger levels scheduled first. RT-Seed's four logical queues
//! (HPQ / RTQ / NRTQ / SQ) map onto priority *bands* of this structure plus
//! a sleep set; this module implements the kernel-side structure exactly:
//! enqueue at tail, dequeue from head of the highest non-empty level, and
//! `sched_yield`-style head-to-tail rotation.
//!
//! Like the kernel's `rt_rq`, the per-level FIFOs are indexed by an
//! occupancy bitmap (one `u128` word covers all 99 levels), so finding the
//! highest non-empty level is a single count-leading-zeros instruction
//! instead of a linear scan — `dequeue_highest` and `peek_highest_priority`
//! are O(1), which is what lets the simulator's dispatch loop scale to
//! 228-hardware-thread topologies (each hardware thread owns one of these
//! queues, and a scan-based pick made the dispatcher dominate runtime).

use std::collections::VecDeque;

use rtseed_model::Priority;

/// A 99-level FIFO ready queue for values of type `T` (thread identifiers)
/// with a bitmap-indexed O(1) highest-level pick.
///
/// # Examples
///
/// ```
/// use rtseed_model::Priority;
/// use rtseed_sim::FifoReadyQueue;
///
/// let mut q = FifoReadyQueue::new();
/// q.enqueue(Priority::new(50).unwrap(), "mandatory");
/// q.enqueue(Priority::new(1).unwrap(), "optional");
/// // The mandatory band always wins.
/// assert_eq!(q.dequeue_highest(), Some((Priority::new(50).unwrap(), "mandatory")));
/// assert_eq!(q.dequeue_highest(), Some((Priority::new(1).unwrap(), "optional")));
/// ```
#[derive(Debug, Clone)]
pub struct FifoReadyQueue<T> {
    // Index 0 ⇒ priority level 1 … index 98 ⇒ level 99.
    levels: Vec<VecDeque<T>>,
    /// Occupancy index: bit `i` is set iff `levels[i]` is non-empty.
    /// Invariant maintained by every mutating operation.
    bitmap: u128,
    len: usize,
}

impl<T> FifoReadyQueue<T> {
    /// An empty ready queue.
    pub fn new() -> FifoReadyQueue<T> {
        FifoReadyQueue {
            levels: (0..99).map(|_| VecDeque::new()).collect(),
            bitmap: 0,
            len: 0,
        }
    }

    #[inline]
    fn slot(prio: Priority) -> usize {
        (prio.level() - 1) as usize
    }

    /// Index of the highest non-empty level, if any: one `lzcnt`.
    #[inline]
    fn top_slot(&self) -> Option<usize> {
        if self.bitmap == 0 {
            None
        } else {
            Some(127 - self.bitmap.leading_zeros() as usize)
        }
    }

    /// Appends `value` at the tail of its priority level's FIFO.
    #[inline]
    pub fn enqueue(&mut self, prio: Priority, value: T) {
        let slot = Self::slot(prio);
        self.levels[slot].push_back(value);
        self.bitmap |= 1 << slot;
        self.len += 1;
    }

    /// Pushes `value` at the *head* of its priority level's FIFO — the
    /// SCHED_FIFO rule for a preempted thread: it resumes before any equal-
    /// priority thread that was queued behind it.
    #[inline]
    pub fn enqueue_front(&mut self, prio: Priority, value: T) {
        let slot = Self::slot(prio);
        self.levels[slot].push_front(value);
        self.bitmap |= 1 << slot;
        self.len += 1;
    }

    /// Pops the head of the highest non-empty priority level. O(1): the
    /// level comes from the occupancy bitmap, not a scan.
    #[inline]
    pub fn dequeue_highest(&mut self) -> Option<(Priority, T)> {
        let slot = self.top_slot()?;
        let v = self.levels[slot].pop_front().expect("bitmap says non-empty");
        if self.levels[slot].is_empty() {
            self.bitmap &= !(1 << slot);
        }
        self.len -= 1;
        let prio = Priority::new((slot + 1) as u8).expect("level in range");
        Some((prio, v))
    }

    /// The priority of the highest-priority queued value, without removing
    /// it. O(1).
    #[inline]
    pub fn peek_highest_priority(&self) -> Option<Priority> {
        self.top_slot()
            .map(|slot| Priority::new((slot + 1) as u8).expect("level in range"))
    }

    /// `sched_yield` semantics: moves the head of `prio`'s FIFO to its
    /// tail. Returns `false` if the level had fewer than two entries (a
    /// yield with no one to yield to is a no-op, like the syscall).
    pub fn rotate(&mut self, prio: Priority) -> bool {
        let q = &mut self.levels[Self::slot(prio)];
        if q.len() < 2 {
            return false;
        }
        let head = q.pop_front().expect("checked non-empty");
        q.push_back(head);
        true
    }

    /// Number of queued values across all levels.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no values are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties every priority level, keeping each level's allocated
    /// capacity. Used by per-worker executor scratch to recycle a ready
    /// queue between runs: after `clear` the queue is observationally
    /// identical to a fresh one (empty bitmap, zero length), but repeated
    /// runs on the same queue allocate nothing.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        let mut bitmap = self.bitmap;
        while bitmap != 0 {
            let slot = 127 - bitmap.leading_zeros() as usize;
            self.levels[slot].clear();
            bitmap &= !(1 << slot);
        }
        self.bitmap = 0;
        self.len = 0;
    }

    /// Number of values queued at exactly `prio`.
    pub fn len_at(&self, prio: Priority) -> usize {
        self.levels[Self::slot(prio)].len()
    }

    /// Iterates over the values queued at `prio` in FIFO order.
    pub fn iter_at(&self, prio: Priority) -> impl Iterator<Item = &T> {
        self.levels[Self::slot(prio)].iter()
    }
}

impl<T: PartialEq> FifoReadyQueue<T> {
    /// Removes the first occurrence of `value` at level `prio`. Returns
    /// `true` if found (the kernel's dequeue-on-block/destroy path).
    pub fn remove(&mut self, prio: Priority, value: &T) -> bool {
        let slot = Self::slot(prio);
        let q = &mut self.levels[slot];
        if let Some(pos) = q.iter().position(|v| v == value) {
            q.remove(pos);
            if q.is_empty() {
                self.bitmap &= !(1 << slot);
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }
}

impl<T> Default for FifoReadyQueue<T> {
    fn default() -> Self {
        FifoReadyQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u8) -> Priority {
        Priority::new(l).unwrap()
    }

    #[test]
    fn highest_priority_first() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(10), 'a');
        q.enqueue(p(99), 'b');
        q.enqueue(p(50), 'c');
        assert_eq!(q.dequeue_highest(), Some((p(99), 'b')));
        assert_eq!(q.dequeue_highest(), Some((p(50), 'c')));
        assert_eq!(q.dequeue_highest(), Some((p(10), 'a')));
        assert_eq!(q.dequeue_highest(), None);
    }

    #[test]
    fn fifo_within_a_level() {
        let mut q = FifoReadyQueue::new();
        for i in 0..10 {
            q.enqueue(p(42), i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue_highest(), Some((p(42), i)));
        }
    }

    #[test]
    fn rotate_moves_head_to_tail() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(7), 'x');
        assert!(!q.rotate(p(7)), "single entry: yield is a no-op");
        q.enqueue(p(7), 'y');
        assert!(q.rotate(p(7)));
        assert_eq!(q.dequeue_highest(), Some((p(7), 'y')));
        assert_eq!(q.dequeue_highest(), Some((p(7), 'x')));
    }

    #[test]
    fn rotate_empty_level_is_noop() {
        let mut q: FifoReadyQueue<u8> = FifoReadyQueue::new();
        assert!(!q.rotate(p(3)));
    }

    #[test]
    fn remove_specific_value() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(5), 'a');
        q.enqueue(p(5), 'b');
        q.enqueue(p(5), 'a');
        assert!(q.remove(p(5), &'a'));
        assert_eq!(q.len(), 2);
        // Only the first occurrence is removed.
        assert_eq!(q.dequeue_highest(), Some((p(5), 'b')));
        assert_eq!(q.dequeue_highest(), Some((p(5), 'a')));
        assert!(!q.remove(p(5), &'z'));
    }

    #[test]
    fn peek_and_len_at() {
        let mut q = FifoReadyQueue::new();
        assert_eq!(q.peek_highest_priority(), None);
        q.enqueue(p(20), 1);
        q.enqueue(p(20), 2);
        q.enqueue(p(60), 3);
        assert_eq!(q.peek_highest_priority(), Some(p(60)));
        assert_eq!(q.len_at(p(20)), 2);
        assert_eq!(q.len_at(p(60)), 1);
        assert_eq!(q.len_at(p(99)), 0);
        assert_eq!(q.iter_at(p(20)).copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn bands_never_invert() {
        // Optional-band work (1–49) must never be chosen over
        // mandatory-band work (50–98) or HPQ (99).
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(49), "optional-max");
        q.enqueue(p(50), "mandatory-min");
        q.enqueue(p(99), "hpq");
        assert_eq!(q.dequeue_highest().unwrap().1, "hpq");
        assert_eq!(q.dequeue_highest().unwrap().1, "mandatory-min");
        assert_eq!(q.dequeue_highest().unwrap().1, "optional-max");
    }

    #[test]
    fn enqueue_front_preempted_resumes_first() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(30), "waiter");
        // A preempted thread is put back at the head of its level.
        q.enqueue_front(p(30), "preempted");
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue_highest(), Some((p(30), "preempted")));
        assert_eq!(q.dequeue_highest(), Some((p(30), "waiter")));
    }

    #[test]
    fn emptied_top_level_falls_through_to_next() {
        // Exercises the occupancy-bitmap clear paths: once the top level
        // drains (by dequeue and by remove), the pick must fall through to
        // the next non-empty level, not a stale bit.
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(90), 'h');
        q.enqueue(p(40), 'm');
        q.enqueue(p(2), 'l');
        assert_eq!(q.dequeue_highest(), Some((p(90), 'h')));
        assert_eq!(q.peek_highest_priority(), Some(p(40)));
        assert!(q.remove(p(40), &'m'));
        assert_eq!(q.peek_highest_priority(), Some(p(2)));
        assert_eq!(q.dequeue_highest(), Some((p(2), 'l')));
        assert_eq!(q.peek_highest_priority(), None);
        assert_eq!(q.dequeue_highest(), None);
        // Refilling a drained level sets its bit again.
        q.enqueue_front(p(40), 'x');
        assert_eq!(q.peek_highest_priority(), Some(p(40)));
    }

    #[test]
    fn boundary_levels_1_and_99() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(1), 'a');
        q.enqueue(p(99), 'z');
        assert_eq!(q.peek_highest_priority(), Some(p(99)));
        assert_eq!(q.dequeue_highest(), Some((p(99), 'z')));
        assert_eq!(q.dequeue_highest(), Some((p(1), 'a')));
    }

    #[test]
    fn clear_resets_to_fresh_state() {
        let mut q = FifoReadyQueue::new();
        q.enqueue(p(1), 'a');
        q.enqueue(p(50), 'b');
        q.enqueue(p(99), 'c');
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_highest_priority(), None);
        assert_eq!(q.dequeue_highest(), None);
        // A cleared queue behaves exactly like a fresh one.
        q.enqueue(p(10), 'x');
        q.enqueue(p(10), 'y');
        assert_eq!(q.dequeue_highest(), Some((p(10), 'x')));
        assert_eq!(q.dequeue_highest(), Some((p(10), 'y')));
        // Clearing an empty queue is a no-op.
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_operations() {
        let mut q = FifoReadyQueue::new();
        assert!(q.is_empty());
        q.enqueue(p(1), 0);
        q.enqueue(p(99), 1);
        assert_eq!(q.len(), 2);
        q.dequeue_highest();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.dequeue_highest();
        assert!(q.is_empty());
    }
}
