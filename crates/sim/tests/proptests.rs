//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use rtseed_model::{Priority, Time};
use rtseed_sim::{EventQueue, FifoReadyQueue, TimerWheel};

proptest! {
    /// Popping the event queue always yields non-decreasing times, and
    /// FIFO order among equal times.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        let mut popped = 0usize;
        while let Some((t, idx)) = q.pop() {
            popped += 1;
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO among equals");
                }
            }
            prop_assert_eq!(Time::from_nanos(times[idx]), t);
            last = Some((t, idx));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The ready queue never inverts priorities and conserves elements.
    #[test]
    fn ready_queue_conserves_and_orders(items in prop::collection::vec(1u8..=99, 0..200)) {
        let mut q = FifoReadyQueue::new();
        for (i, &level) in items.iter().enumerate() {
            q.enqueue(Priority::new(level).unwrap(), i);
        }
        prop_assert_eq!(q.len(), items.len());
        let mut last: Option<Priority> = None;
        let mut count = 0;
        while let Some((p, idx)) = q.dequeue_highest() {
            count += 1;
            prop_assert_eq!(Priority::new(items[idx]).unwrap(), p);
            if let Some(lp) = last {
                prop_assert!(p <= lp, "priorities must be non-increasing");
            }
            last = Some(p);
        }
        prop_assert_eq!(count, items.len());
        prop_assert!(q.is_empty());
    }

    /// Cancelled timers never fire; uncancelled ones fire exactly once.
    #[test]
    fn timer_wheel_cancellation(deadlines in prop::collection::vec(0u64..1000, 1..50), cancel_mask in any::<u64>()) {
        let mut w = TimerWheel::new();
        let mut handles = Vec::new();
        for (i, &d) in deadlines.iter().enumerate() {
            handles.push((w.arm(Time::from_nanos(d), i), i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (h, i) in &handles {
            if cancel_mask >> (i % 64) & 1 == 1 {
                w.cancel(*h);
                cancelled.insert(*i);
            }
        }
        let mut fired = std::collections::HashSet::new();
        while let Some((at, i)) = w.pop_expired(Time::from_nanos(2000)) {
            prop_assert_eq!(at, Time::from_nanos(deadlines[i]));
            prop_assert!(!cancelled.contains(&i), "cancelled timer fired");
            prop_assert!(fired.insert(i), "timer fired twice");
        }
        prop_assert_eq!(fired.len() + cancelled.len(), deadlines.len());
    }
}
