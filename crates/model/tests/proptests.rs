//! Property-based tests for the foundational types.

use proptest::prelude::*;
use rtseed_model::{Priority, Span, Time, Topology};

proptest! {
    #[test]
    fn span_add_sub_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (sa, sb) = (Span::from_nanos(a), Span::from_nanos(b));
        prop_assert_eq!((sa + sb) - sb, sa);
        prop_assert_eq!((sa + sb) - sa, sb);
    }

    #[test]
    fn span_ordering_matches_nanos(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (Span::from_nanos(a), Span::from_nanos(b));
        prop_assert_eq!(sa.cmp(&sb), a.cmp(&b));
    }

    #[test]
    fn span_div_ceil_bounds(r in 1u64..u64::MAX / 4, t in 1u64..u64::MAX / 4) {
        let jobs = Span::from_nanos(r).div_ceil(Span::from_nanos(t));
        // ⌈r/t⌉ satisfies (jobs − 1)·t < r ≤ jobs·t.
        prop_assert!(jobs * t >= r);
        prop_assert!((jobs - 1).saturating_mul(t) < r || r == 0);
    }

    #[test]
    fn span_saturating_sub_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let res = Span::from_nanos(a).saturating_sub(Span::from_nanos(b));
        prop_assert_eq!(res.as_nanos(), a.saturating_sub(b));
    }

    #[test]
    fn time_elapsed_inverse_of_add(base in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        let t0 = Time::from_nanos(base);
        let t1 = t0 + Span::from_nanos(d);
        prop_assert_eq!(t1.elapsed_since(t0), Span::from_nanos(d));
        prop_assert_eq!(t0.saturating_elapsed_since(t1), Span::ZERO);
    }

    #[test]
    fn priority_valid_range_roundtrips(level in 1u8..=99) {
        let p = Priority::new(level).unwrap();
        prop_assert_eq!(p.level(), level);
        if p.is_mandatory_band() {
            let o = p.optional_counterpart().unwrap();
            prop_assert!(o.is_optional_band());
            prop_assert_eq!(o.mandatory_counterpart().unwrap(), p);
            prop_assert_eq!(p.level() - o.level(), Priority::MANDATORY_OPTIONAL_GAP);
        }
    }

    #[test]
    fn priority_invalid_rejected(level in prop_oneof![Just(0u8), 100u8..=255]) {
        prop_assert!(Priority::new(level).is_err());
    }

    #[test]
    fn topology_core_slot_bijection(cores in 1u32..128, smt in 1u32..8) {
        let topo = Topology::new(cores, smt).unwrap();
        let mut seen = std::collections::HashSet::new();
        for hw in topo.hw_thread_ids() {
            let core = topo.core_of(hw);
            let slot = topo.slot_of(hw);
            prop_assert!(core.0 < cores);
            prop_assert!(slot < smt);
            prop_assert_eq!(topo.hw_thread(core, slot), hw);
            prop_assert!(seen.insert((core, slot)));
        }
        prop_assert_eq!(seen.len() as u32, topo.hw_threads());
    }

    #[test]
    fn siblings_partition_hw_threads(cores in 1u32..32, smt in 1u32..8) {
        let topo = Topology::new(cores, smt).unwrap();
        for hw in topo.hw_thread_ids() {
            let sibs: Vec<_> = topo.siblings(hw).collect();
            prop_assert_eq!(sibs.len() as u32, smt);
            prop_assert!(sibs.contains(&hw));
            for s in sibs {
                prop_assert_eq!(topo.core_of(s), topo.core_of(hw));
            }
        }
    }

    #[test]
    fn mul_f64_monotone(ns in 0u64..1_000_000_000_000, k in 0.0f64..10.0) {
        let s = Span::from_nanos(ns);
        let scaled = s.mul_f64(k);
        if k >= 1.0 {
            prop_assert!(scaled >= s.mul_f64(1.0).min(s));
        } else {
            prop_assert!(scaled <= s + Span::from_nanos(1));
        }
    }
}
