//! The **practical imprecise computation model** — the paper's stated
//! future work (§VII): tasks with *multiple mandatory parts*, each
//! followed by its own (parallel) optional parts, generalizing the
//! mandatory → optional → wind-up pipeline of the extended model
//! (Chishiro & Yamasaki 2013, "Semi-Fixed-Priority Scheduling with
//! Multiple Mandatory Parts").
//!
//! A practical task is a sequence of **stages**; stage *j* consists of a
//! mandatory part `m_j` and the parallel optional parts that may run after
//! it. The last stage's mandatory part plays the wind-up role (it may
//! have no optional parts). A two-stage task with optional parts only in
//! the first stage is exactly the parallel-extended model.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{TaskSetError, TaskSpec};
use crate::time::Span;

/// One stage of a practical imprecise task: a mandatory part followed by
/// zero or more parallel optional parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    mandatory: Span,
    optional: Vec<Span>,
}

impl Stage {
    /// Creates a stage.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::ZeroMandatory`] if the mandatory part is
    /// zero.
    pub fn new(mandatory: Span, optional: Vec<Span>) -> Result<Stage, TaskSetError> {
        if mandatory.is_zero() {
            return Err(TaskSetError::ZeroMandatory {
                task: "<stage>".into(),
            });
        }
        Ok(Stage {
            mandatory,
            optional,
        })
    }

    /// The stage's mandatory WCET `m_j`.
    #[inline]
    pub fn mandatory(&self) -> Span {
        self.mandatory
    }

    /// The stage's parallel optional parts.
    #[inline]
    pub fn optional_parts(&self) -> &[Span] {
        &self.optional
    }
}

/// A practical imprecise task: `N ≥ 1` stages within one period.
///
/// # Examples
///
/// ```
/// use rtseed_model::practical::{PracticalTaskSpec, Stage};
/// use rtseed_model::Span;
///
/// // Three mandatory parts; optional analysis after the first two.
/// let task = PracticalTaskSpec::new(
///     "multi",
///     Span::from_secs(1),
///     vec![
///         Stage::new(Span::from_millis(100), vec![Span::from_millis(500); 4])?,
///         Stage::new(Span::from_millis(100), vec![Span::from_millis(500); 4])?,
///         Stage::new(Span::from_millis(100), vec![])?,
///     ],
/// )?;
/// assert_eq!(task.total_mandatory(), Span::from_millis(300));
/// assert_eq!(task.stages().len(), 3);
/// # Ok::<(), rtseed_model::TaskSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PracticalTaskSpec {
    name: String,
    period: Span,
    stages: Vec<Stage>,
}

impl PracticalTaskSpec {
    /// Creates a practical task.
    ///
    /// # Errors
    ///
    /// * [`TaskSetError::Empty`] if `stages` is empty;
    /// * [`TaskSetError::ZeroPeriod`] if the period is zero;
    /// * [`TaskSetError::WcetExceedsPeriod`] if `Σ m_j > T`.
    pub fn new(
        name: impl Into<String>,
        period: Span,
        stages: Vec<Stage>,
    ) -> Result<PracticalTaskSpec, TaskSetError> {
        let name = name.into();
        if stages.is_empty() {
            return Err(TaskSetError::Empty);
        }
        if period.is_zero() {
            return Err(TaskSetError::ZeroPeriod { task: name });
        }
        let total: Span = stages.iter().map(Stage::mandatory).sum();
        if total > period {
            return Err(TaskSetError::WcetExceedsPeriod { task: name });
        }
        Ok(PracticalTaskSpec {
            name,
            period,
            stages,
        })
    }

    /// The task's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Period (= relative deadline).
    #[inline]
    pub fn period(&self) -> Span {
        self.period
    }

    /// Relative deadline (implicit-deadline model).
    #[inline]
    pub fn deadline(&self) -> Span {
        self.period
    }

    /// The stages in execution order.
    #[inline]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total real-time demand `Σ m_j` (the schedulable WCET; optional
    /// parts never count).
    pub fn total_mandatory(&self) -> Span {
        self.stages.iter().map(Stage::mandatory).sum()
    }

    /// Real-time utilization `Σ m_j / T`.
    pub fn utilization(&self) -> f64 {
        self.total_mandatory() / self.period
    }

    /// Mandatory demand of stages *after* `stage` (exclusive) — the work
    /// that must still fit between `OD_j` and the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn remaining_mandatory_after(&self, stage: usize) -> Span {
        assert!(stage < self.stages.len(), "stage out of range");
        self.stages[stage + 1..].iter().map(Stage::mandatory).sum()
    }

    /// Mandatory demand of stages up to and including `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn mandatory_through(&self, stage: usize) -> Span {
        assert!(stage < self.stages.len(), "stage out of range");
        self.stages[..=stage].iter().map(Stage::mandatory).sum()
    }

    /// Converts a two-stage practical task (optional parts only in the
    /// first stage) into the equivalent parallel-extended [`TaskSpec`].
    ///
    /// # Errors
    ///
    /// Returns `None` if the task has more than two stages or the second
    /// stage carries optional parts (not representable in the extended
    /// model).
    pub fn to_extended(&self) -> Option<TaskSpec> {
        if self.stages.len() != 2 || !self.stages[1].optional.is_empty() {
            return None;
        }
        let mut b = TaskSpec::builder(self.name.clone());
        b.period(self.period)
            .mandatory(self.stages[0].mandatory)
            .windup(self.stages[1].mandatory);
        for &o in &self.stages[0].optional {
            b.optional_part(o);
        }
        b.build().ok()
    }
}

impl fmt::Display for PracticalTaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(T={}, stages={})",
            self.name,
            self.period,
            self.stages.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Span {
        Span::from_millis(v)
    }

    fn three_stage() -> PracticalTaskSpec {
        PracticalTaskSpec::new(
            "p",
            ms(1000),
            vec![
                Stage::new(ms(100), vec![ms(500), ms(500)]).unwrap(),
                Stage::new(ms(150), vec![ms(300)]).unwrap(),
                Stage::new(ms(50), vec![]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let t = three_stage();
        assert_eq!(t.name(), "p");
        assert_eq!(t.period(), ms(1000));
        assert_eq!(t.deadline(), ms(1000));
        assert_eq!(t.stages().len(), 3);
        assert_eq!(t.total_mandatory(), ms(300));
        assert!((t.utilization() - 0.3).abs() < 1e-12);
        assert_eq!(t.stages()[0].optional_parts().len(), 2);
    }

    #[test]
    fn remaining_and_through() {
        let t = three_stage();
        assert_eq!(t.remaining_mandatory_after(0), ms(200));
        assert_eq!(t.remaining_mandatory_after(1), ms(50));
        assert_eq!(t.remaining_mandatory_after(2), Span::ZERO);
        assert_eq!(t.mandatory_through(0), ms(100));
        assert_eq!(t.mandatory_through(2), ms(300));
    }

    #[test]
    fn validation() {
        assert!(matches!(
            PracticalTaskSpec::new("x", ms(10), vec![]),
            Err(TaskSetError::Empty)
        ));
        assert!(matches!(
            PracticalTaskSpec::new("x", Span::ZERO, vec![Stage::new(ms(1), vec![]).unwrap()]),
            Err(TaskSetError::ZeroPeriod { .. })
        ));
        assert!(matches!(
            PracticalTaskSpec::new(
                "x",
                ms(10),
                vec![Stage::new(ms(6), vec![]).unwrap(), Stage::new(ms(5), vec![]).unwrap()]
            ),
            Err(TaskSetError::WcetExceedsPeriod { .. })
        ));
        assert!(matches!(
            Stage::new(Span::ZERO, vec![]),
            Err(TaskSetError::ZeroMandatory { .. })
        ));
    }

    #[test]
    fn two_stage_converts_to_extended() {
        let t = PracticalTaskSpec::new(
            "conv",
            ms(1000),
            vec![
                Stage::new(ms(250), vec![ms(1000); 4]).unwrap(),
                Stage::new(ms(250), vec![]).unwrap(),
            ],
        )
        .unwrap();
        let ext = t.to_extended().unwrap();
        assert_eq!(ext.mandatory(), ms(250));
        assert_eq!(ext.windup(), ms(250));
        assert_eq!(ext.optional_count(), 4);
    }

    #[test]
    fn three_stage_does_not_convert() {
        assert!(three_stage().to_extended().is_none());
        // Nor does a two-stage with optional in the final stage.
        let t = PracticalTaskSpec::new(
            "bad",
            ms(1000),
            vec![
                Stage::new(ms(100), vec![]).unwrap(),
                Stage::new(ms(100), vec![ms(10)]).unwrap(),
            ],
        )
        .unwrap();
        assert!(t.to_extended().is_none());
    }

    #[test]
    fn display() {
        assert_eq!(three_stage().to_string(), "p(T=1s, stages=3)");
    }
}
