//! Simulated time: absolute instants ([`Time`]) and spans ([`Span`]).
//!
//! Both are nanosecond-granularity `u64` newtypes (C-NEWTYPE). They are
//! deliberately distinct from [`std::time::Instant`]/[`std::time::Duration`]
//! so that simulator timestamps can never be confused with wall-clock
//! values, while remaining cheap `Copy` scalars.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of (simulated or measured) time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use rtseed_model::Span;
/// let period = Span::from_secs(1);
/// assert_eq!(period.as_millis(), 1_000);
/// assert_eq!(period / 4, Span::from_millis(250));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Span(u64);

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);
    /// The largest representable span.
    pub const MAX: Span = Span(u64::MAX);

    /// Creates a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Span(ns)
    }

    /// Creates a span from microseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~584 000 years).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Span(us * 1_000)
    }

    /// Creates a span from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Span(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Span(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating at the
    /// representable range and treating NaN/negative input as zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Span::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Span::MAX
        } else {
            Span(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (useful for reporting overheads in µs as the
    /// paper's Figs. 10–12 do).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional milliseconds (the paper's Fig. 13 unit).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Span) -> Option<Span> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Span(v)),
            None => None,
        }
    }

    /// Checked integer multiplication; `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, k: u64) -> Option<Span> {
        match self.0.checked_mul(k) {
            Some(v) => Some(Span(v)),
            None => None,
        }
    }

    /// Scales the span by a non-negative factor, saturating on overflow and
    /// treating NaN/negative factors as zero.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Span {
        Span::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Span) -> Span {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Span) -> Span {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Ceiling division `⌈self / rhs⌉` as used by response-time analysis.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_ceil(self, rhs: Span) -> u64 {
        assert!(rhs.0 != 0, "division by zero span");
        self.0.div_ceil(rhs.0)
    }
}

impl Add for Span {
    type Output = Span;
    #[inline]
    fn add(self, rhs: Span) -> Span {
        Span(self.0.checked_add(rhs.0).expect("span overflow"))
    }
}

impl AddAssign for Span {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub for Span {
    type Output = Span;
    #[inline]
    fn sub(self, rhs: Span) -> Span {
        Span(self.0.checked_sub(rhs.0).expect("span underflow"))
    }
}

impl SubAssign for Span {
    #[inline]
    fn sub_assign(&mut self, rhs: Span) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    #[inline]
    fn mul(self, k: u64) -> Span {
        Span(self.0.checked_mul(k).expect("span overflow"))
    }
}

impl Div<u64> for Span {
    type Output = Span;
    #[inline]
    fn div(self, k: u64) -> Span {
        Span(self.0 / k)
    }
}

impl Div for Span {
    /// Ratio of two spans.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Span) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem for Span {
    type Output = Span;
    #[inline]
    fn rem(self, rhs: Span) -> Span {
        Span(self.0 % rhs.0)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, Add::add)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An absolute instant on the (simulated) timeline, in nanoseconds since
/// the synchronous release at time zero.
///
/// # Examples
///
/// ```
/// use rtseed_model::{Span, Time};
/// let release = Time::ZERO;
/// let deadline = release + Span::from_secs(1);
/// assert_eq!(deadline.elapsed_since(release), Span::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The origin of the timeline (synchronous task-set release).
    pub const ZERO: Time = Time(0);
    /// The farthest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw nanoseconds since the origin.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the origin.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn elapsed_since(self, earlier: Time) -> Span {
        Span(
            self.0
                .checked_sub(earlier.0)
                .expect("elapsed_since: earlier instant is in the future"),
        )
    }

    /// Span elapsed since `earlier`, or [`Span::ZERO`] if `earlier` is later.
    #[inline]
    pub const fn saturating_elapsed_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, s: Span) -> Option<Time> {
        match self.0.checked_add(s.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }
}

impl Add<Span> for Time {
    type Output = Time;
    #[inline]
    fn add(self, s: Span) -> Time {
        Time(self.0.checked_add(s.0).expect("time overflow"))
    }
}

impl AddAssign<Span> for Time {
    #[inline]
    fn add_assign(&mut self, s: Span) {
        *self = *self + s;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, s: Span) -> Time {
        Time(self.0.checked_sub(s.0).expect("time underflow"))
    }
}

impl Sub for Time {
    type Output = Span;
    #[inline]
    fn sub(self, rhs: Time) -> Span {
        self.elapsed_since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Span(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_constructors_agree() {
        assert_eq!(Span::from_secs(1), Span::from_millis(1000));
        assert_eq!(Span::from_millis(1), Span::from_micros(1000));
        assert_eq!(Span::from_micros(1), Span::from_nanos(1000));
    }

    #[test]
    fn span_accessors_truncate() {
        let s = Span::from_nanos(1_999_999_999);
        assert_eq!(s.as_secs(), 1);
        assert_eq!(s.as_millis(), 1_999);
        assert_eq!(s.as_micros(), 1_999_999);
    }

    #[test]
    fn span_float_roundtrip() {
        let s = Span::from_secs_f64(0.25);
        assert_eq!(s, Span::from_millis(250));
        assert!((s.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn span_from_secs_f64_edge_cases() {
        assert_eq!(Span::from_secs_f64(-1.0), Span::ZERO);
        assert_eq!(Span::from_secs_f64(f64::NAN), Span::ZERO);
        assert_eq!(Span::from_secs_f64(f64::INFINITY), Span::MAX);
    }

    #[test]
    fn span_arithmetic() {
        let a = Span::from_millis(250);
        let b = Span::from_millis(750);
        assert_eq!(a + b, Span::from_secs(1));
        assert_eq!(b - a, Span::from_millis(500));
        assert_eq!(a * 4, Span::from_secs(1));
        assert_eq!(Span::from_secs(1) / 4, a);
        assert!((b / a - 3.0).abs() < 1e-12);
        assert_eq!(b % a, Span::ZERO);
    }

    #[test]
    fn span_saturating_and_checked() {
        assert_eq!(Span::ZERO.saturating_sub(Span::from_secs(1)), Span::ZERO);
        assert_eq!(Span::MAX.checked_add(Span::from_nanos(1)), None);
        assert_eq!(Span::MAX.checked_mul(2), None);
        assert_eq!(
            Span::from_secs(1).checked_mul(3),
            Some(Span::from_secs(3))
        );
    }

    #[test]
    #[should_panic(expected = "span overflow")]
    fn span_add_overflow_panics() {
        let _ = Span::MAX + Span::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "span underflow")]
    fn span_sub_underflow_panics() {
        let _ = Span::ZERO - Span::from_nanos(1);
    }

    #[test]
    fn span_div_ceil_matches_rta_use() {
        // ⌈R/T⌉ for R = 1.5 T must be 2.
        let t = Span::from_millis(100);
        assert_eq!(Span::from_millis(150).div_ceil(t), 2);
        assert_eq!(Span::from_millis(100).div_ceil(t), 1);
        assert_eq!(Span::ZERO.div_ceil(t), 0);
    }

    #[test]
    fn span_display_uses_natural_units() {
        assert_eq!(Span::from_secs(2).to_string(), "2s");
        assert_eq!(Span::from_millis(250).to_string(), "250ms");
        assert_eq!(Span::from_micros(42).to_string(), "42us");
        assert_eq!(Span::from_nanos(7).to_string(), "7ns");
        assert_eq!(Span::ZERO.to_string(), "0s");
    }

    #[test]
    fn span_min_max_sum() {
        let a = Span::from_millis(1);
        let b = Span::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Span = [a, b, b].into_iter().sum();
        assert_eq!(total, Span::from_millis(5));
    }

    #[test]
    fn time_arithmetic() {
        let t0 = Time::ZERO;
        let t1 = t0 + Span::from_secs(1);
        assert_eq!(t1.elapsed_since(t0), Span::from_secs(1));
        assert_eq!(t1 - t0, Span::from_secs(1));
        assert_eq!(t1 - Span::from_secs(1), t0);
        assert_eq!(t0.saturating_elapsed_since(t1), Span::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn time_elapsed_since_panics_backwards() {
        let _ = Time::ZERO.elapsed_since(Time::from_nanos(1));
    }

    #[test]
    fn time_ordering_and_display() {
        assert!(Time::ZERO < Time::from_nanos(1));
        assert_eq!((Time::ZERO + Span::from_millis(3)).to_string(), "t+3ms");
    }

    #[test]
    fn mul_f64_scales() {
        let s = Span::from_secs(1).mul_f64(0.5);
        assert_eq!(s, Span::from_millis(500));
        assert_eq!(Span::from_secs(1).mul_f64(-2.0), Span::ZERO);
    }
}
