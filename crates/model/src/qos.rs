//! QoS accounting for imprecise computation.
//!
//! The paper's QoS notion (§II-A): "the longer the optional part of each
//! task takes to execute, the higher its QoS is". We record, per job, how
//! much optional execution each parallel optional part achieved and its
//! terminal [`OptionalOutcome`], and summarize across jobs.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::JobId;
use crate::state::OptionalOutcome;
use crate::time::Span;

/// A tenant's QoS floor: the fraction of its admission-time optional
/// deadline the serving layer's shedding ladder must preserve.
///
/// When a later submission fails the admission test, the serving layer may
/// *shed* resident tenants' quality — deploy optional deadlines shorter
/// than the analysis-maximal ones — to prefer placements that keep the
/// residents' QoS high. The floor bounds that shedding: a tenant admitted
/// with optional deadline `OD` and floor fraction `f` is never deployed an
/// optional deadline below `f · OD`. The floor is part of the tenant's
/// contract, fixed at admission; [`QosFloor::none`] (fraction 0) tolerates
/// arbitrary shedding, fraction 1 forbids it entirely.
///
/// # Examples
///
/// ```
/// use rtseed_model::{QosFloor, Span};
///
/// let floor = QosFloor::fraction(0.5);
/// assert_eq!(floor.floor_od(Span::from_millis(900)), Span::from_millis(450));
/// assert_eq!(QosFloor::none().floor_od(Span::from_millis(900)), Span::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosFloor {
    fraction: f64,
}

impl QosFloor {
    /// No floor: the ladder may shed this tenant's QoS arbitrarily far.
    pub const fn none() -> QosFloor {
        QosFloor { fraction: 0.0 }
    }

    /// A floor at `fraction` of the admission-time optional deadline,
    /// clamped into `[0, 1]` (NaN maps to 0).
    pub fn fraction(fraction: f64) -> QosFloor {
        let fraction = if fraction.is_nan() {
            0.0
        } else {
            fraction.clamp(0.0, 1.0)
        };
        QosFloor { fraction }
    }

    /// The configured fraction.
    pub const fn value(self) -> f64 {
        self.fraction
    }

    /// The lowest optional deadline the ladder may deploy for a tenant
    /// that was granted `granted` at admission.
    pub fn floor_od(self, granted: Span) -> Span {
        granted.mul_f64(self.fraction)
    }
}

impl Default for QosFloor {
    fn default() -> QosFloor {
        QosFloor::none()
    }
}

/// Per-job QoS record: one entry per parallel optional part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosRecord {
    /// The job this record describes.
    pub job: JobId,
    /// `(achieved execution, outcome)` for each parallel optional part, in
    /// part order.
    pub parts: Vec<(Span, OptionalOutcome)>,
    /// Whether the wind-up part met the job's deadline.
    pub deadline_met: bool,
}

impl QosRecord {
    /// Total optional execution achieved by this job.
    pub fn achieved(&self) -> Span {
        self.parts.iter().map(|(s, _)| *s).sum()
    }

    /// Number of parts with each outcome `(completed, terminated, discarded)`.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for (_, o) in &self.parts {
            match o {
                OptionalOutcome::Completed => c.0 += 1,
                OptionalOutcome::Terminated => c.1 += 1,
                OptionalOutcome::Discarded => c.2 += 1,
            }
        }
        c
    }

    /// QoS ratio of this job: achieved optional execution divided by
    /// requested optional execution (`Σ oᵢ,ₖ`). 1.0 when `requested` is
    /// zero (a job with no optional work trivially has full QoS).
    pub fn ratio(&self, requested: Span) -> f64 {
        if requested.is_zero() {
            1.0
        } else {
            self.achieved() / requested
        }
    }
}

/// Aggregated QoS across many jobs.
///
/// # Examples
///
/// ```
/// use rtseed_model::{JobId, QosRecord, QosSummary, Span, TaskId};
/// use rtseed_model::OptionalOutcome::*;
/// let rec = QosRecord {
///     job: JobId { task: TaskId(0), seq: 0 },
///     parts: vec![(Span::from_millis(300), Completed), (Span::from_millis(100), Terminated)],
///     deadline_met: true,
/// };
/// let mut sum = QosSummary::new();
/// sum.record(&rec, Span::from_millis(400));
/// assert_eq!(sum.jobs(), 1);
/// assert!((sum.mean_ratio() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosSummary {
    jobs: u64,
    deadline_misses: u64,
    completed: u64,
    terminated: u64,
    discarded: u64,
    achieved_total: Span,
    requested_total: Span,
    ratio_sum: f64,
    degraded_jobs: u64,
}

impl QosSummary {
    /// An empty summary.
    pub fn new() -> QosSummary {
        QosSummary::default()
    }

    /// Folds one job record into the summary. `requested` is the job's total
    /// requested optional execution `Σ oᵢ,ₖ`.
    pub fn record(&mut self, rec: &QosRecord, requested: Span) {
        self.record_with_mode(rec, requested, false);
    }

    /// Like [`record`](QosSummary::record), additionally noting whether the
    /// job ran under an overload supervisor's degraded mode or quarantine
    /// (its optional parts were shed rather than scheduled).
    pub fn record_with_mode(&mut self, rec: &QosRecord, requested: Span, degraded: bool) {
        self.record_job(
            rec.parts.iter().copied(),
            requested,
            rec.deadline_met,
            degraded,
        );
    }

    /// Streaming equivalent of [`record_with_mode`](QosSummary::record_with_mode):
    /// folds a job's `(achieved, outcome)` parts directly, without an
    /// intermediate [`QosRecord`]. The simulator executors call this once
    /// per job on their hot path — an np = 228 job would otherwise build a
    /// 228-entry vector just to be summed and dropped. Returns the job's
    /// QoS ratio (1.0 when `requested` is zero).
    pub fn record_job<I>(
        &mut self,
        parts: I,
        requested: Span,
        deadline_met: bool,
        degraded: bool,
    ) -> f64
    where
        I: IntoIterator<Item = (Span, OptionalOutcome)>,
    {
        if degraded {
            self.degraded_jobs += 1;
        }
        self.jobs += 1;
        if !deadline_met {
            self.deadline_misses += 1;
        }
        let mut achieved = Span::ZERO;
        for (span, outcome) in parts {
            achieved += span;
            match outcome {
                OptionalOutcome::Completed => self.completed += 1,
                OptionalOutcome::Terminated => self.terminated += 1,
                OptionalOutcome::Discarded => self.discarded += 1,
            }
        }
        self.achieved_total += achieved;
        self.requested_total += requested;
        let ratio = if requested.is_zero() {
            1.0
        } else {
            achieved / requested
        };
        self.ratio_sum += ratio;
        ratio
    }

    /// Number of jobs recorded.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Number of jobs whose wind-up part missed its deadline.
    #[inline]
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Number of jobs that ran with optional parts shed (degraded mode or
    /// task quarantine).
    #[inline]
    pub fn degraded_jobs(&self) -> u64 {
        self.degraded_jobs
    }

    /// Optional parts completed / terminated / discarded across all jobs.
    #[inline]
    pub fn outcome_totals(&self) -> (u64, u64, u64) {
        (self.completed, self.terminated, self.discarded)
    }

    /// Total optional execution achieved.
    #[inline]
    pub fn achieved_total(&self) -> Span {
        self.achieved_total
    }

    /// Total optional execution requested.
    #[inline]
    pub fn requested_total(&self) -> Span {
        self.requested_total
    }

    /// Mean per-job QoS ratio (1.0 if no jobs were recorded).
    pub fn mean_ratio(&self) -> f64 {
        if self.jobs == 0 {
            1.0
        } else {
            self.ratio_sum / self.jobs as f64
        }
    }

    /// Aggregate QoS ratio: total achieved / total requested.
    pub fn aggregate_ratio(&self) -> f64 {
        if self.requested_total.is_zero() {
            1.0
        } else {
            self.achieved_total / self.requested_total
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &QosSummary) {
        self.jobs += other.jobs;
        self.deadline_misses += other.deadline_misses;
        self.completed += other.completed;
        self.terminated += other.terminated;
        self.discarded += other.discarded;
        self.achieved_total += other.achieved_total;
        self.requested_total += other.requested_total;
        self.ratio_sum += other.ratio_sum;
        self.degraded_jobs += other.degraded_jobs;
    }
}

impl fmt::Display for QosSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, {} misses, {} degraded, parts C/T/D = {}/{}/{}, QoS {:.3}",
            self.jobs,
            self.deadline_misses,
            self.degraded_jobs,
            self.completed,
            self.terminated,
            self.discarded,
            self.aggregate_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;

    fn job(seq: u64) -> JobId {
        JobId {
            task: TaskId(0),
            seq,
        }
    }

    fn rec(seq: u64, parts: Vec<(Span, OptionalOutcome)>, met: bool) -> QosRecord {
        QosRecord {
            job: job(seq),
            parts,
            deadline_met: met,
        }
    }

    #[test]
    fn record_accounting() {
        let r = rec(
            0,
            vec![
                (Span::from_millis(10), OptionalOutcome::Completed),
                (Span::from_millis(5), OptionalOutcome::Terminated),
                (Span::ZERO, OptionalOutcome::Discarded),
            ],
            true,
        );
        assert_eq!(r.achieved(), Span::from_millis(15));
        assert_eq!(r.outcome_counts(), (1, 1, 1));
        assert!((r.ratio(Span::from_millis(30)) - 0.5).abs() < 1e-12);
        assert!((r.ratio(Span::ZERO) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates() {
        let mut s = QosSummary::new();
        s.record(
            &rec(0, vec![(Span::from_millis(10), OptionalOutcome::Completed)], true),
            Span::from_millis(10),
        );
        s.record(
            &rec(1, vec![(Span::from_millis(5), OptionalOutcome::Terminated)], false),
            Span::from_millis(10),
        );
        assert_eq!(s.jobs(), 2);
        assert_eq!(s.deadline_misses(), 1);
        assert_eq!(s.outcome_totals(), (1, 1, 0));
        assert_eq!(s.achieved_total(), Span::from_millis(15));
        assert_eq!(s.requested_total(), Span::from_millis(20));
        assert!((s.mean_ratio() - 0.75).abs() < 1e-12);
        assert!((s.aggregate_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_has_full_qos() {
        let s = QosSummary::new();
        assert_eq!(s.jobs(), 0);
        assert!((s.mean_ratio() - 1.0).abs() < 1e-12);
        assert!((s.aggregate_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = QosSummary::new();
        let mut b = QosSummary::new();
        a.record(
            &rec(0, vec![(Span::from_millis(10), OptionalOutcome::Completed)], true),
            Span::from_millis(10),
        );
        b.record(
            &rec(1, vec![(Span::ZERO, OptionalOutcome::Discarded)], true),
            Span::from_millis(10),
        );
        a.merge(&b);
        assert_eq!(a.jobs(), 2);
        assert_eq!(a.outcome_totals(), (1, 0, 1));
        assert!((a.aggregate_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_jobs_are_counted_and_merged() {
        let mut a = QosSummary::new();
        a.record_with_mode(&rec(0, vec![], true), Span::ZERO, true);
        a.record(&rec(1, vec![], true), Span::ZERO);
        assert_eq!(a.degraded_jobs(), 1);
        assert_eq!(a.jobs(), 2);
        let mut b = QosSummary::new();
        b.record_with_mode(&rec(2, vec![], true), Span::ZERO, true);
        a.merge(&b);
        assert_eq!(a.degraded_jobs(), 2);
        assert!(a.to_string().contains("2 degraded"), "{a}");
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut s = QosSummary::new();
        s.record(
            &rec(0, vec![(Span::from_millis(10), OptionalOutcome::Completed)], true),
            Span::from_millis(10),
        );
        let out = s.to_string();
        assert!(out.contains("1 jobs"), "{out}");
        assert!(out.contains("QoS 1.000"), "{out}");
    }
}
