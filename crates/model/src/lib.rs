//! # rtseed-model
//!
//! Core domain types shared by every crate in the RT-Seed workspace:
//! simulated time, task/topology identifiers, the **parallel-extended
//! imprecise computation model** task descriptions, many-core topologies,
//! and QoS accounting.
//!
//! The parallel-extended imprecise computation model (paper §II-A) splits
//! each periodic task τᵢ into
//!
//! * a **mandatory part** with worst-case execution time `mᵢ`,
//! * `npᵢ` **parallel optional parts** with execution times `oᵢ,ₖ`
//!   (non-real-time; each is *completed*, *terminated* or *discarded*
//!   independently), and
//! * a **wind-up part** with worst-case execution time `wᵢ` released at the
//!   *optional deadline* `ODᵢ`.
//!
//! The WCET of the task is `Cᵢ = mᵢ + wᵢ`; optional execution never counts
//! towards schedulability (Theorems 1 and 2 of the paper).
//!
//! # Examples
//!
//! ```
//! use rtseed_model::{Span, TaskSpec, TaskSet, Topology};
//!
//! // The evaluation task of paper §V-A: T = 1 s, m = w = 250 ms,
//! // 57 parallel optional parts of 1 s each (always overrun).
//! let task = TaskSpec::builder("trader")
//!     .period(Span::from_secs(1))
//!     .mandatory(Span::from_millis(250))
//!     .windup(Span::from_millis(250))
//!     .optional_parts(57, Span::from_secs(1))
//!     .build()
//!     .unwrap();
//! let set = TaskSet::new(vec![task]).unwrap();
//! let phi = Topology::xeon_phi_3120a();
//! assert_eq!(phi.hw_threads(), 228);
//! assert!(set.total_utilization() <= phi.hw_threads() as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ids;
pub mod practical;
pub mod qos;
pub mod state;
pub mod task;
pub mod time;
pub mod topology;

pub use ids::{CoreId, HwThreadId, JobId, PartId, Priority, SessionId, TaskId, TenantId};
pub use qos::{QosFloor, QosRecord, QosSummary};
pub use state::{JobPhase, OptionalOutcome, PartKind, TenantHealth, TenantState};
pub use task::{TaskSet, TaskSetError, TaskSpec, TaskSpecBuilder};
pub use time::{Span, Time};
pub use topology::{Topology, TopologyError};
