//! Identifier newtypes (C-NEWTYPE): tasks, jobs, parts, cores, hardware
//! threads, and SCHED_FIFO priorities.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Index of a task within a [`crate::TaskSet`] (0-based, RM rank order is
/// assigned separately by the analysis crate).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0 + 1)
    }
}

/// A job: the `seq`-th instance of task `task` (paper §II-A: "each instance
/// of a task is called a job").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct JobId {
    /// The owning task.
    pub task: TaskId,
    /// 0-based job sequence number.
    pub seq: u64,
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.seq)
    }
}

/// Index of one parallel optional part within a job (`k` in `oᵢ,ₖ`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PartId(pub u32);

impl PartId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o[{}]", self.0)
    }
}

/// A physical core (C0–C56 on the Xeon Phi 3120A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A hardware thread (SMT sibling). On the Xeon Phi 3120A there are four per
/// core, giving hw-thread ids 0–227.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct HwThreadId(pub u32);

impl HwThreadId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HwThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// A tenant: one client of the serving layer, owning a submitted task set.
///
/// Tenant ids are assigned by the `SessionManager` in submission order and
/// never reused within a session, so a rejected submission still gets a
/// distinct id for audit trails.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A serving session: one admission-controlled lifetime of a
/// `SessionManager`, spanning many tenants. Monotonically assigned.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session{}", self.0)
    }
}

/// A SCHED_FIFO priority level in `1..=99` (larger is higher, paper §IV-B).
///
/// RT-Seed partitions the range into bands:
///
/// * **HPQ** — level 99, reserved for the highest-priority task
///   (e.g. RMUS separation, footnote 1 of the paper);
/// * **RTQ** — levels 50–98, mandatory/wind-up threads;
/// * **NRTQ** — levels 1–49, parallel optional threads
///   (always `mandatory − 49`).
///
/// # Examples
///
/// ```
/// use rtseed_model::Priority;
/// let mandatory = Priority::new(90).unwrap();
/// let optional = mandatory.optional_counterpart().unwrap();
/// assert_eq!(optional.level(), 41);
/// assert!(mandatory > optional);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Priority(u8);

/// Error returned when a priority level is outside `1..=99` or outside the
/// band an operation requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityError {
    level: u8,
}

impl fmt::Display for PriorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SCHED_FIFO priority level {}", self.level)
    }
}

impl std::error::Error for PriorityError {}

impl Priority {
    /// The reserved highest-priority level (HPQ).
    pub const HPQ: Priority = Priority(99);
    /// Highest mandatory-band level.
    pub const RTQ_MAX: Priority = Priority(98);
    /// Lowest mandatory-band level.
    pub const RTQ_MIN: Priority = Priority(50);
    /// Highest optional-band level.
    pub const NRTQ_MAX: Priority = Priority(49);
    /// Lowest optional-band level.
    pub const NRTQ_MIN: Priority = Priority(1);
    /// Fixed distance between a mandatory thread and its optional threads
    /// (paper §IV-B: "the difference ... is 49").
    pub const MANDATORY_OPTIONAL_GAP: u8 = 49;

    /// Creates a priority, validating `1 ≤ level ≤ 99`.
    ///
    /// # Errors
    ///
    /// Returns [`PriorityError`] if the level is 0 or above 99.
    pub const fn new(level: u8) -> Result<Priority, PriorityError> {
        if level >= 1 && level <= 99 {
            Ok(Priority(level))
        } else {
            Err(PriorityError { level })
        }
    }

    /// The raw level in `1..=99`.
    #[inline]
    pub const fn level(self) -> u8 {
        self.0
    }

    /// `true` if this is the reserved HPQ level 99.
    #[inline]
    pub const fn is_hpq(self) -> bool {
        self.0 == 99
    }

    /// `true` if the level lies in the mandatory band 50–98.
    #[inline]
    pub const fn is_mandatory_band(self) -> bool {
        self.0 >= 50 && self.0 <= 98
    }

    /// `true` if the level lies in the optional band 1–49.
    #[inline]
    pub const fn is_optional_band(self) -> bool {
        self.0 >= 1 && self.0 <= 49
    }

    /// The optional-band priority paired with this mandatory priority
    /// (paper example: mandatory 90 → optional 41).
    ///
    /// # Errors
    ///
    /// Returns [`PriorityError`] if `self` is not in the mandatory band.
    pub const fn optional_counterpart(self) -> Result<Priority, PriorityError> {
        if self.is_mandatory_band() {
            Ok(Priority(self.0 - Self::MANDATORY_OPTIONAL_GAP))
        } else {
            Err(PriorityError { level: self.0 })
        }
    }

    /// The mandatory-band priority paired with this optional priority.
    ///
    /// # Errors
    ///
    /// Returns [`PriorityError`] if `self` is not in the optional band.
    pub const fn mandatory_counterpart(self) -> Result<Priority, PriorityError> {
        if self.is_optional_band() {
            Ok(Priority(self.0 + Self::MANDATORY_OPTIONAL_GAP))
        } else {
            Err(PriorityError { level: self.0 })
        }
    }

    /// The stable RTQ level for the mandatory/wind-up thread of a task
    /// with the given period.
    ///
    /// Levels are bucketed by the period's power-of-two magnitude,
    /// anchored so that periods at or below ~0.5 ms reach
    /// [`Priority::RTQ_MAX`] and each doubling of the period drops one
    /// level (floored at [`Priority::RTQ_MIN`]). The mapping is monotone —
    /// a strictly shorter period never gets a lower level — but it is
    /// *many-to-one*: distinct periods inside the same power-of-two bucket
    /// share a level, and SCHED_FIFO cannot order tasks within a level.
    /// Any analysis run against deployed levels must therefore charge
    /// same-level tasks with each other's interference (see
    /// `RmwpAnalysis::analyze_with_levels`).
    pub fn for_period(period: crate::Span) -> Priority {
        let ns = period.as_nanos().max(1);
        let log2 = 63 - u64::leading_zeros(ns) as i64;
        // 2^19 ns ≈ 0.5 ms maps to RTQ_MAX; each doubling costs one level.
        let level = (98 - (log2 - 19)).clamp(50, 98) as u8;
        // The clamp keeps `level` inside the RTQ band, so construction can
        // only fail if the band constants themselves change; fall back to
        // the band floor rather than panicking.
        Priority::new(level).unwrap_or(Priority::RTQ_MIN)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_validation() {
        assert!(Priority::new(0).is_err());
        assert!(Priority::new(100).is_err());
        assert_eq!(Priority::new(1).unwrap().level(), 1);
        assert_eq!(Priority::new(99).unwrap(), Priority::HPQ);
    }

    #[test]
    fn priority_bands_partition_the_range() {
        for level in 1..=99u8 {
            let p = Priority::new(level).unwrap();
            let bands =
                p.is_hpq() as u8 + p.is_mandatory_band() as u8 + p.is_optional_band() as u8;
            assert_eq!(bands, 1, "level {level} must be in exactly one band");
        }
    }

    #[test]
    fn paper_example_mandatory_90_optional_41() {
        let m = Priority::new(90).unwrap();
        assert_eq!(m.optional_counterpart().unwrap().level(), 41);
    }

    #[test]
    fn counterparts_roundtrip() {
        for level in 50..=98u8 {
            let m = Priority::new(level).unwrap();
            let o = m.optional_counterpart().unwrap();
            assert!(o.is_optional_band());
            assert_eq!(o.mandatory_counterpart().unwrap(), m);
        }
    }

    #[test]
    fn counterpart_rejects_wrong_band() {
        assert!(Priority::HPQ.optional_counterpart().is_err());
        assert!(Priority::new(10).unwrap().optional_counterpart().is_err());
        assert!(Priority::new(60).unwrap().mandatory_counterpart().is_err());
    }

    #[test]
    fn ordering_follows_levels() {
        assert!(Priority::HPQ > Priority::RTQ_MAX);
        assert!(Priority::RTQ_MIN > Priority::NRTQ_MAX);
        assert!(Priority::NRTQ_MAX > Priority::NRTQ_MIN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(0).to_string(), "τ1");
        assert_eq!(
            JobId {
                task: TaskId(0),
                seq: 3
            }
            .to_string(),
            "τ1#3"
        );
        assert_eq!(CoreId(56).to_string(), "C56");
        assert_eq!(HwThreadId(227).to_string(), "H227");
        assert_eq!(PartId(2).to_string(), "o[2]");
        assert_eq!(Priority::new(50).unwrap().to_string(), "prio50");
        assert_eq!(
            Priority::new(0).unwrap_err().to_string(),
            "invalid SCHED_FIFO priority level 0"
        );
    }
}
