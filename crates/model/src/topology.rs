//! Many-core processor topologies (cores × SMT hardware threads).
//!
//! The paper evaluates on an Intel Xeon Phi 3120A: 57 cores with four
//! hardware threads each (228 hw threads), 512 KiB of L2 per core.
//! Hardware-thread numbering follows the paper's Fig. 8: hw thread `h`
//! belongs to core `h % cores` for the *slot-major* convention used when
//! assigning "one by one" (first one thread on every core, then the second
//! thread on every core, ...). We instead store the conventional
//! core-major mapping (`core = h / threads_per_core`) and expose helpers
//! for both directions; the assignment policies in `rtseed` work in terms
//! of `(core, slot)` pairs so the numbering convention cannot leak bugs.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{CoreId, HwThreadId};

/// A homogeneous multi-/many-core topology.
///
/// # Examples
///
/// ```
/// use rtseed_model::Topology;
/// let phi = Topology::xeon_phi_3120a();
/// assert_eq!(phi.cores(), 57);
/// assert_eq!(phi.smt_per_core(), 4);
/// assert_eq!(phi.hw_threads(), 228);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    cores: u32,
    smt_per_core: u32,
    l2_bytes_per_core: u64,
}

/// Error constructing a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyError;

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology requires at least one core and one SMT thread per core")
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Creates a topology with `cores` physical cores and `smt_per_core`
    /// hardware threads per core.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if either dimension is zero.
    pub const fn new(cores: u32, smt_per_core: u32) -> Result<Topology, TopologyError> {
        if cores == 0 || smt_per_core == 0 {
            return Err(TopologyError);
        }
        Ok(Topology {
            cores,
            smt_per_core,
            l2_bytes_per_core: 512 * 1024,
        })
    }

    /// The Intel Xeon Phi 3120A used in the paper's evaluation:
    /// 57 cores × 4 hardware threads, 512 KiB L2 per core.
    pub const fn xeon_phi_3120a() -> Topology {
        Topology {
            cores: 57,
            smt_per_core: 4,
            l2_bytes_per_core: 512 * 1024,
        }
    }

    /// A small quad-core topology (2-way SMT) convenient for tests.
    pub const fn quad_core_smt2() -> Topology {
        Topology {
            cores: 4,
            smt_per_core: 2,
            l2_bytes_per_core: 512 * 1024,
        }
    }

    /// A uniprocessor topology.
    pub const fn uniprocessor() -> Topology {
        Topology {
            cores: 1,
            smt_per_core: 1,
            l2_bytes_per_core: 512 * 1024,
        }
    }

    /// Number of physical cores.
    #[inline]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Hardware threads per core.
    #[inline]
    pub const fn smt_per_core(&self) -> u32 {
        self.smt_per_core
    }

    /// Total hardware threads `M`.
    #[inline]
    pub const fn hw_threads(&self) -> u32 {
        self.cores * self.smt_per_core
    }

    /// L2 cache size per core in bytes (512 KiB on the Xeon Phi 3120A; the
    /// paper's CPU-Memory load reads/writes exactly this much to pollute it).
    #[inline]
    pub const fn l2_bytes_per_core(&self) -> u64 {
        self.l2_bytes_per_core
    }

    /// Returns a copy with a different per-core L2 size.
    #[must_use]
    pub const fn with_l2_bytes_per_core(mut self, bytes: u64) -> Topology {
        self.l2_bytes_per_core = bytes;
        self
    }

    /// The core owning hardware thread `h` (core-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[inline]
    pub fn core_of(&self, h: HwThreadId) -> CoreId {
        assert!(h.0 < self.hw_threads(), "hw thread {h} out of range");
        CoreId(h.0 / self.smt_per_core)
    }

    /// The SMT slot (0-based sibling index) of hardware thread `h` within
    /// its core.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[inline]
    pub fn slot_of(&self, h: HwThreadId) -> u32 {
        assert!(h.0 < self.hw_threads(), "hw thread {h} out of range");
        h.0 % self.smt_per_core
    }

    /// The hardware thread at `(core, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `slot` is out of range.
    #[inline]
    pub fn hw_thread(&self, core: CoreId, slot: u32) -> HwThreadId {
        assert!(core.0 < self.cores, "core {core} out of range");
        assert!(slot < self.smt_per_core, "SMT slot {slot} out of range");
        HwThreadId(core.0 * self.smt_per_core + slot)
    }

    /// Iterates over all hardware threads in id order.
    pub fn hw_thread_ids(&self) -> impl Iterator<Item = HwThreadId> + use<> {
        (0..self.hw_threads()).map(HwThreadId)
    }

    /// Iterates over all cores in id order.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + use<> {
        (0..self.cores).map(CoreId)
    }

    /// The SMT siblings sharing a core with `h` (including `h` itself).
    pub fn siblings(&self, h: HwThreadId) -> impl Iterator<Item = HwThreadId> + use<> {
        let core = self.core_of(h);
        let base = core.0 * self.smt_per_core;
        (base..base + self.smt_per_core).map(HwThreadId)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores x {} SMT = {} hw threads",
            self.cores,
            self.smt_per_core,
            self.hw_threads()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_phi_dimensions_match_paper() {
        let t = Topology::xeon_phi_3120a();
        assert_eq!(t.cores(), 57);
        assert_eq!(t.smt_per_core(), 4);
        assert_eq!(t.hw_threads(), 228);
        assert_eq!(t.l2_bytes_per_core(), 512 * 1024);
    }

    #[test]
    fn new_validates() {
        assert_eq!(Topology::new(0, 4).unwrap_err(), TopologyError);
        assert_eq!(Topology::new(4, 0).unwrap_err(), TopologyError);
        assert!(Topology::new(4, 2).is_ok());
        assert_eq!(
            TopologyError.to_string(),
            "topology requires at least one core and one SMT thread per core"
        );
    }

    #[test]
    fn core_slot_roundtrip() {
        let t = Topology::xeon_phi_3120a();
        for h in t.hw_thread_ids() {
            let core = t.core_of(h);
            let slot = t.slot_of(h);
            assert_eq!(t.hw_thread(core, slot), h);
        }
    }

    #[test]
    fn siblings_share_core() {
        let t = Topology::quad_core_smt2();
        let sibs: Vec<_> = t.siblings(HwThreadId(3)).collect();
        assert_eq!(sibs, vec![HwThreadId(2), HwThreadId(3)]);
        for s in sibs {
            assert_eq!(t.core_of(s), CoreId(1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_of_rejects_out_of_range() {
        let _ = Topology::uniprocessor().core_of(HwThreadId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hw_thread_rejects_bad_slot() {
        let _ = Topology::quad_core_smt2().hw_thread(CoreId(0), 2);
    }

    #[test]
    fn iterators_cover_everything() {
        let t = Topology::quad_core_smt2();
        assert_eq!(t.hw_thread_ids().count(), 8);
        assert_eq!(t.core_ids().count(), 4);
    }

    #[test]
    fn l2_override() {
        let t = Topology::uniprocessor().with_l2_bytes_per_core(1024);
        assert_eq!(t.l2_bytes_per_core(), 1024);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(
            Topology::xeon_phi_3120a().to_string(),
            "57 cores x 4 SMT = 228 hw threads"
        );
    }
}
