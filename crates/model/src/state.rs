//! Job- and part-level state machines for the parallel-extended imprecise
//! computation model (paper Fig. 1 and §III).

use core::fmt;

use serde::{Deserialize, Serialize};

/// Which of a task's three part kinds is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartKind {
    /// The real-time first part (mᵢ).
    Mandatory,
    /// A non-real-time parallel optional part (oᵢ,ₖ).
    Optional,
    /// The real-time second ("wind-up") part (wᵢ).
    Windup,
}

impl PartKind {
    /// `true` for the real-time parts (mandatory and wind-up), which alone
    /// count towards schedulability.
    #[inline]
    pub const fn is_real_time(self) -> bool {
        matches!(self, PartKind::Mandatory | PartKind::Windup)
    }
}

impl fmt::Display for PartKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartKind::Mandatory => "mandatory",
            PartKind::Optional => "optional",
            PartKind::Windup => "wind-up",
        };
        f.write_str(s)
    }
}

/// Terminal state of one parallel optional part (paper Fig. 1: each part is
/// completed, terminated or discarded *independently*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptionalOutcome {
    /// Ran to completion before the optional deadline: full QoS.
    Completed,
    /// Was running at the optional deadline and was cut short: partial QoS.
    Terminated,
    /// Never started (mandatory part finished too late to leave any time):
    /// zero QoS.
    Discarded,
}

impl OptionalOutcome {
    /// `true` if the part contributed any QoS (completed or terminated).
    #[inline]
    pub const fn executed(self) -> bool {
        !matches!(self, OptionalOutcome::Discarded)
    }
}

impl fmt::Display for OptionalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptionalOutcome::Completed => "completed",
            OptionalOutcome::Terminated => "terminated",
            OptionalOutcome::Discarded => "discarded",
        };
        f.write_str(s)
    }
}

/// Phase of one job of a parallel-extended imprecise task as it moves
/// through semi-fixed-priority scheduling (paper §III).
///
/// Legal transitions (enforced by [`JobPhase::can_transition_to`]):
///
/// ```text
/// Released ─► MandatoryRunning ─► OptionalRunning ─► WindupRunning ─► Done
///                    │                                    ▲
///                    └──────────── (late mandatory) ──────┘
/// ```
///
/// A job whose mandatory part completes *after* the optional deadline skips
/// `OptionalRunning` entirely (its optional parts are discarded, §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobPhase {
    /// Released, mandatory part not yet started.
    Released,
    /// Mandatory part executing (RTQ).
    MandatoryRunning,
    /// Parallel optional parts executing (NRTQ); mandatory complete.
    OptionalRunning,
    /// Wind-up part executing (RTQ); released at the optional deadline or at
    /// late mandatory completion.
    WindupRunning,
    /// Wind-up complete; job sleeps until its next release (SQ).
    Done,
}

impl JobPhase {
    /// Whether the transition `self → next` is legal in the
    /// semi-fixed-priority part state machine.
    pub const fn can_transition_to(self, next: JobPhase) -> bool {
        matches!(
            (self, next),
            (JobPhase::Released, JobPhase::MandatoryRunning)
                | (JobPhase::MandatoryRunning, JobPhase::OptionalRunning)
                | (JobPhase::MandatoryRunning, JobPhase::WindupRunning)
                | (JobPhase::OptionalRunning, JobPhase::WindupRunning)
                | (JobPhase::WindupRunning, JobPhase::Done)
        )
    }

    /// The two *semi-fixed* priority-change points of §III: entering the
    /// optional phase (priority drops to the optional band) and entering the
    /// wind-up phase (priority rises back to the mandatory band).
    pub const fn is_priority_change(self, next: JobPhase) -> bool {
        matches!(
            (self, next),
            (JobPhase::MandatoryRunning, JobPhase::OptionalRunning)
                | (JobPhase::OptionalRunning, JobPhase::WindupRunning)
                | (JobPhase::MandatoryRunning, JobPhase::WindupRunning)
        )
    }
}

impl fmt::Display for JobPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobPhase::Released => "released",
            JobPhase::MandatoryRunning => "mandatory-running",
            JobPhase::OptionalRunning => "optional-running",
            JobPhase::WindupRunning => "windup-running",
            JobPhase::Done => "done",
        };
        f.write_str(s)
    }
}

/// Lifecycle state of one tenant in the serving layer.
///
/// Legal transitions (enforced by [`TenantState::can_transition_to`]):
///
/// ```text
/// Pending ─► Admitted ─► Departed
///    │            └────► Evicted
///    └────► Rejected
/// ```
///
/// `Rejected` and `Departed`/`Evicted` are terminal: a tenant that wants
/// back in submits again under a fresh id, so admission decisions stay an
/// append-only audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenantState {
    /// Submitted, admission test not yet run.
    Pending,
    /// Passed the admission test; its tasks are bound to CPUs and running.
    Admitted,
    /// Failed the admission test; none of its tasks ever ran.
    Rejected,
    /// Left voluntarily (or its churn plan departed it); tasks removed.
    Departed,
    /// Removed by the serving layer (operator eviction) to free capacity.
    Evicted,
}

impl TenantState {
    /// Whether the transition `self → next` is legal in the tenant
    /// lifecycle.
    pub const fn can_transition_to(self, next: TenantState) -> bool {
        matches!(
            (self, next),
            (TenantState::Pending, TenantState::Admitted)
                | (TenantState::Pending, TenantState::Rejected)
                | (TenantState::Admitted, TenantState::Departed)
                | (TenantState::Admitted, TenantState::Evicted)
        )
    }

    /// `true` while the tenant's tasks are scheduled (only `Admitted`).
    #[inline]
    pub const fn is_active(self) -> bool {
        matches!(self, TenantState::Admitted)
    }

    /// `true` once no further transition is possible.
    #[inline]
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            TenantState::Rejected | TenantState::Departed | TenantState::Evicted
        )
    }
}

impl fmt::Display for TenantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TenantState::Pending => "pending",
            TenantState::Admitted => "admitted",
            TenantState::Rejected => "rejected",
            TenantState::Departed => "departed",
            TenantState::Evicted => "evicted",
        };
        f.write_str(s)
    }
}

/// Health classification of an *admitted* tenant, maintained by the
/// serving layer from the engine's per-job deadline/overrun signals.
///
/// Orthogonal to [`TenantState`]: a tenant is `Admitted` for its whole
/// residency while its health walks this ladder. Repeated violations
/// (deadline misses or real-time overruns) step the tenant **down** one
/// rung at a time; sustained clean jobs step it back **up**. `Evicted`
/// is terminal and coincides with the [`TenantState::Evicted`]
/// lifecycle transition.
///
/// The variants are ordered from best to worst, so `a < b` means "`a`
/// is healthier than `b`".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum TenantHealth {
    /// Meeting deadlines; full service (mandatory + optional + wind-up).
    Healthy,
    /// Accumulating violations; still fully served but on notice.
    Degraded,
    /// Optional parts forcibly shed until the tenant proves clean again.
    Quarantined,
    /// Removed by health enforcement; tasks unbound. Terminal.
    Evicted,
}

impl TenantHealth {
    /// One rung worse, saturating at [`TenantHealth::Evicted`].
    pub const fn worse(self) -> TenantHealth {
        match self {
            TenantHealth::Healthy => TenantHealth::Degraded,
            TenantHealth::Degraded => TenantHealth::Quarantined,
            TenantHealth::Quarantined | TenantHealth::Evicted => TenantHealth::Evicted,
        }
    }

    /// One rung better, saturating at [`TenantHealth::Healthy`]. An
    /// evicted tenant never recovers (`Evicted` is terminal).
    pub const fn better(self) -> TenantHealth {
        match self {
            TenantHealth::Healthy | TenantHealth::Degraded => TenantHealth::Healthy,
            TenantHealth::Quarantined => TenantHealth::Degraded,
            TenantHealth::Evicted => TenantHealth::Evicted,
        }
    }

    /// `true` once no further transition is possible.
    #[inline]
    pub const fn is_terminal(self) -> bool {
        matches!(self, TenantHealth::Evicted)
    }
}

impl fmt::Display for TenantHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TenantHealth::Healthy => "healthy",
            TenantHealth::Degraded => "degraded",
            TenantHealth::Quarantined => "quarantined",
            TenantHealth::Evicted => "evicted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_parts() {
        assert!(PartKind::Mandatory.is_real_time());
        assert!(PartKind::Windup.is_real_time());
        assert!(!PartKind::Optional.is_real_time());
    }

    #[test]
    fn optional_outcome_executed() {
        assert!(OptionalOutcome::Completed.executed());
        assert!(OptionalOutcome::Terminated.executed());
        assert!(!OptionalOutcome::Discarded.executed());
    }

    #[test]
    fn happy_path_transitions() {
        use JobPhase::*;
        let path = [Released, MandatoryRunning, OptionalRunning, WindupRunning, Done];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn late_mandatory_skips_optional() {
        assert!(JobPhase::MandatoryRunning.can_transition_to(JobPhase::WindupRunning));
    }

    #[test]
    fn illegal_transitions_rejected() {
        use JobPhase::*;
        assert!(!Released.can_transition_to(OptionalRunning));
        assert!(!Released.can_transition_to(WindupRunning));
        assert!(!OptionalRunning.can_transition_to(MandatoryRunning));
        assert!(!WindupRunning.can_transition_to(OptionalRunning));
        assert!(!Done.can_transition_to(Released)); // next job is a new phase value
        assert!(!MandatoryRunning.can_transition_to(MandatoryRunning));
    }

    #[test]
    fn exactly_the_semi_fixed_priority_changes() {
        use JobPhase::*;
        // Paper §III: priority changes in exactly two situations (the late
        // mandatory → wind-up case is variant (ii) happening early).
        assert!(MandatoryRunning.is_priority_change(OptionalRunning));
        assert!(OptionalRunning.is_priority_change(WindupRunning));
        assert!(MandatoryRunning.is_priority_change(WindupRunning));
        assert!(!Released.is_priority_change(MandatoryRunning));
        assert!(!WindupRunning.is_priority_change(Done));
    }

    #[test]
    fn displays() {
        assert_eq!(PartKind::Windup.to_string(), "wind-up");
        assert_eq!(OptionalOutcome::Discarded.to_string(), "discarded");
        assert_eq!(JobPhase::OptionalRunning.to_string(), "optional-running");
        assert_eq!(TenantState::Admitted.to_string(), "admitted");
    }

    #[test]
    fn tenant_lifecycle_transitions() {
        use TenantState::*;
        assert!(Pending.can_transition_to(Admitted));
        assert!(Pending.can_transition_to(Rejected));
        assert!(Admitted.can_transition_to(Departed));
        assert!(Admitted.can_transition_to(Evicted));
        // Terminal states go nowhere; re-admission needs a new tenant id.
        for terminal in [Rejected, Departed, Evicted] {
            assert!(terminal.is_terminal());
            for next in [Pending, Admitted, Rejected, Departed, Evicted] {
                assert!(!terminal.can_transition_to(next));
            }
        }
        assert!(!Pending.is_terminal() && !Admitted.is_terminal());
        assert!(Admitted.is_active());
        assert!(!Pending.is_active() && !Rejected.is_active());
    }
}
