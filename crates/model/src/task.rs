//! The parallel-extended imprecise computation task model (paper §II-A).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::TaskId;
use crate::time::Span;

/// Static description of one parallel-extended imprecise task τᵢ.
///
/// Invariants enforced at construction:
///
/// * `period > 0` and `deadline == period` (implicit-deadline model, §II-A);
/// * `mandatory + windup ≤ period` (otherwise even an idle system cannot
///   schedule the task);
/// * at least one optional part may have zero parts (`np_i = 0` is a plain
///   Liu–Layland task with a split WCET).
///
/// # Examples
///
/// ```
/// use rtseed_model::{Span, TaskSpec};
/// let t = TaskSpec::builder("τ1")
///     .period(Span::from_secs(1))
///     .mandatory(Span::from_millis(250))
///     .windup(Span::from_millis(250))
///     .optional_parts(4, Span::from_secs(1))
///     .build()?;
/// assert_eq!(t.wcet(), Span::from_millis(500));
/// assert_eq!(t.optional_count(), 4);
/// # Ok::<(), rtseed_model::TaskSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    name: String,
    period: Span,
    mandatory: Span,
    windup: Span,
    optional: Vec<Span>,
}

impl TaskSpec {
    /// Starts building a task with the given human-readable name.
    pub fn builder(name: impl Into<String>) -> TaskSpecBuilder {
        TaskSpecBuilder {
            name: name.into(),
            period: None,
            mandatory: Span::ZERO,
            windup: Span::ZERO,
            optional: Vec::new(),
        }
    }

    /// The task's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Period Tᵢ.
    #[inline]
    pub fn period(&self) -> Span {
        self.period
    }

    /// Relative deadline Dᵢ (equal to the period in this model).
    #[inline]
    pub fn deadline(&self) -> Span {
        self.period
    }

    /// WCET of the mandatory part, mᵢ.
    #[inline]
    pub fn mandatory(&self) -> Span {
        self.mandatory
    }

    /// WCET of the wind-up part, wᵢ.
    #[inline]
    pub fn windup(&self) -> Span {
        self.windup
    }

    /// Total real-time WCET `Cᵢ = mᵢ + wᵢ` (optional parts excluded, §II-A).
    #[inline]
    pub fn wcet(&self) -> Span {
        self.mandatory + self.windup
    }

    /// Execution times of the parallel optional parts `oᵢ,ₖ`.
    #[inline]
    pub fn optional_parts(&self) -> &[Span] {
        &self.optional
    }

    /// Number of parallel optional parts, npᵢ.
    #[inline]
    pub fn optional_count(&self) -> usize {
        self.optional.len()
    }

    /// Real-time utilization `Uᵢ = Cᵢ / Tᵢ`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet() / self.period
    }

    /// Optional utilization `Uᵢᵒ = Σₖ oᵢ,ₖ / Tᵢ` (QoS side only).
    #[inline]
    pub fn optional_utilization(&self) -> f64 {
        self.optional.iter().copied().sum::<Span>() / self.period
    }

    /// Returns a copy with a different number of homogeneous optional parts,
    /// preserving everything else. Useful for the paper's np sweep
    /// (np ∈ {4, 8, 16, 32, 57, 114, 171, 228}).
    pub fn with_optional_parts(&self, count: usize, each: Span) -> TaskSpec {
        TaskSpec {
            name: self.name.clone(),
            period: self.period,
            mandatory: self.mandatory,
            windup: self.windup,
            optional: vec![each; count],
        }
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(T={}, m={}, w={}, np={})",
            self.name,
            self.period,
            self.mandatory,
            self.windup,
            self.optional.len()
        )
    }
}

/// Builder for [`TaskSpec`] (C-BUILDER, non-consuming).
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    name: String,
    period: Option<Span>,
    mandatory: Span,
    windup: Span,
    optional: Vec<Span>,
}

impl TaskSpecBuilder {
    /// Sets the period Tᵢ (and hence the implicit deadline Dᵢ).
    pub fn period(&mut self, period: Span) -> &mut Self {
        self.period = Some(period);
        self
    }

    /// Sets the mandatory-part WCET mᵢ.
    pub fn mandatory(&mut self, m: Span) -> &mut Self {
        self.mandatory = m;
        self
    }

    /// Sets the wind-up part WCET wᵢ.
    pub fn windup(&mut self, w: Span) -> &mut Self {
        self.windup = w;
        self
    }

    /// Adds `count` homogeneous parallel optional parts of execution time
    /// `each` (the paper's evaluation uses identical `o₁,ₖ = o₁`).
    pub fn optional_parts(&mut self, count: usize, each: Span) -> &mut Self {
        self.optional.extend(std::iter::repeat_n(each, count));
        self
    }

    /// Adds a single optional part with the given execution time.
    pub fn optional_part(&mut self, o: Span) -> &mut Self {
        self.optional.push(o);
        self
    }

    /// Validates and builds the [`TaskSpec`].
    ///
    /// # Errors
    ///
    /// * [`TaskSetError::ZeroPeriod`] if no positive period was given;
    /// * [`TaskSetError::WcetExceedsPeriod`] if `mᵢ + wᵢ > Tᵢ`;
    /// * [`TaskSetError::ZeroWindup`] if wind-up is zero while optional
    ///   parts exist (the extended model *requires* a wind-up part to
    ///   guarantee termination schedulability, §I);
    /// * [`TaskSetError::ZeroMandatory`] if the mandatory part is zero.
    pub fn build(&self) -> Result<TaskSpec, TaskSetError> {
        let period = self.period.unwrap_or(Span::ZERO);
        if period.is_zero() {
            return Err(TaskSetError::ZeroPeriod {
                task: self.name.clone(),
            });
        }
        if self.mandatory.is_zero() {
            return Err(TaskSetError::ZeroMandatory {
                task: self.name.clone(),
            });
        }
        if !self.optional.is_empty() && self.windup.is_zero() {
            return Err(TaskSetError::ZeroWindup {
                task: self.name.clone(),
            });
        }
        let wcet = self
            .mandatory
            .checked_add(self.windup)
            .ok_or_else(|| TaskSetError::WcetExceedsPeriod {
                task: self.name.clone(),
            })?;
        if wcet > period {
            return Err(TaskSetError::WcetExceedsPeriod {
                task: self.name.clone(),
            });
        }
        Ok(TaskSpec {
            name: self.name.clone(),
            period,
            mandatory: self.mandatory,
            windup: self.windup,
            optional: self.optional.clone(),
        })
    }
}

/// A validated synchronous periodic task set Γ (paper §II-A).
///
/// Tasks keep their insertion order; [`TaskId`]s index into it. Rate
/// Monotonic *rank* (shorter period first) is computed by the analysis
/// crate, not stored here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
}

impl TaskSet {
    /// Creates a task set from the given tasks.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError::Empty`] if `tasks` is empty.
    pub fn new(tasks: Vec<TaskSpec>) -> Result<TaskSet, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        Ok(TaskSet { tasks })
    }

    /// Number of tasks n.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `false`: a constructed task set is never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.index()]
    }

    /// Fallible lookup.
    #[inline]
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.get(id.index())
    }

    /// Iterates over `(TaskId, &TaskSpec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskSpec)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// All task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + use<> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Total real-time utilization `Σ Uᵢ` (NOT divided by M; the paper's
    /// system utilization is `U = (1/M) Σ Uᵢ`, see [`TaskSet::system_utilization`]).
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::utilization).sum()
    }

    /// System utilization `U = (1/M) Σᵢ Uᵢ` for `m` processors.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn system_utilization(&self, m: usize) -> f64 {
        assert!(m > 0, "processor count must be positive");
        self.total_utilization() / m as f64
    }

    /// Task ids sorted in Rate Monotonic order (shortest period first; ties
    /// broken by insertion order, which makes the order deterministic).
    pub fn rm_order(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.ids().collect();
        ids.sort_by_key(|id| (self.task(*id).period(), id.0));
        ids
    }

    /// The hyperperiod (LCM of periods), saturating at [`Span::MAX`] if it
    /// overflows. Useful for bounding simulation horizons.
    pub fn hyperperiod(&self) -> Span {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut l: u64 = 1;
        for t in &self.tasks {
            let p = t.period().as_nanos();
            let g = gcd(l, p);
            match (l / g).checked_mul(p) {
                Some(v) => l = v,
                None => return Span::MAX,
            }
        }
        Span::from_nanos(l)
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a TaskSpec;
    type IntoIter = std::slice::Iter<'a, TaskSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

/// Errors produced while constructing task specifications or sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskSetError {
    /// The task set contained no tasks.
    Empty,
    /// A task had a zero period.
    ZeroPeriod {
        /// Offending task name.
        task: String,
    },
    /// A task had a zero mandatory part.
    ZeroMandatory {
        /// Offending task name.
        task: String,
    },
    /// A task declared optional parts but no wind-up part.
    ZeroWindup {
        /// Offending task name.
        task: String,
    },
    /// `mᵢ + wᵢ` exceeded the period.
    WcetExceedsPeriod {
        /// Offending task name.
        task: String,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::Empty => write!(f, "task set is empty"),
            TaskSetError::ZeroPeriod { task } => {
                write!(f, "task `{task}` has a zero period")
            }
            TaskSetError::ZeroMandatory { task } => {
                write!(f, "task `{task}` has a zero mandatory part")
            }
            TaskSetError::ZeroWindup { task } => write!(
                f,
                "task `{task}` has optional parts but a zero wind-up part"
            ),
            TaskSetError::WcetExceedsPeriod { task } => {
                write!(f, "task `{task}` has mandatory + wind-up exceeding its period")
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_task(np: usize) -> TaskSpec {
        TaskSpec::builder("τ1")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(250))
            .windup(Span::from_millis(250))
            .optional_parts(np, Span::from_secs(1))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_paper_evaluation_task() {
        let t = paper_task(57);
        assert_eq!(t.period(), Span::from_secs(1));
        assert_eq!(t.deadline(), t.period());
        assert_eq!(t.wcet(), Span::from_millis(500));
        assert_eq!(t.optional_count(), 57);
        assert!((t.utilization() - 0.5).abs() < 1e-12);
        assert!((t.optional_utilization() - 57.0).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_zero_period() {
        let err = TaskSpec::builder("t").mandatory(Span::from_millis(1)).build();
        assert_eq!(
            err.unwrap_err(),
            TaskSetError::ZeroPeriod { task: "t".into() }
        );
    }

    #[test]
    fn builder_rejects_zero_mandatory() {
        let err = TaskSpec::builder("t").period(Span::from_secs(1)).build();
        assert!(matches!(err, Err(TaskSetError::ZeroMandatory { .. })));
    }

    #[test]
    fn builder_rejects_optional_without_windup() {
        let err = TaskSpec::builder("t")
            .period(Span::from_secs(1))
            .mandatory(Span::from_millis(1))
            .optional_part(Span::from_millis(1))
            .build();
        assert!(matches!(err, Err(TaskSetError::ZeroWindup { .. })));
    }

    #[test]
    fn builder_rejects_overlong_wcet() {
        let err = TaskSpec::builder("t")
            .period(Span::from_millis(100))
            .mandatory(Span::from_millis(80))
            .windup(Span::from_millis(30))
            .build();
        assert!(matches!(err, Err(TaskSetError::WcetExceedsPeriod { .. })));
    }

    #[test]
    fn builder_allows_pure_liu_layland_task() {
        // np = 0, w = 0 degenerates to the classic model.
        let t = TaskSpec::builder("ll")
            .period(Span::from_millis(10))
            .mandatory(Span::from_millis(3))
            .build()
            .unwrap();
        assert_eq!(t.optional_count(), 0);
        assert_eq!(t.wcet(), Span::from_millis(3));
    }

    #[test]
    fn with_optional_parts_sweeps_np() {
        let base = paper_task(4);
        for np in [4usize, 8, 16, 32, 57, 114, 171, 228] {
            let t = base.with_optional_parts(np, Span::from_secs(1));
            assert_eq!(t.optional_count(), np);
            assert_eq!(t.wcet(), base.wcet());
        }
    }

    #[test]
    fn task_set_rejects_empty() {
        assert_eq!(TaskSet::new(vec![]).unwrap_err(), TaskSetError::Empty);
    }

    #[test]
    fn task_set_accessors() {
        let set = TaskSet::new(vec![paper_task(2), paper_task(4)]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.task(TaskId(1)).optional_count(), 4);
        assert!(set.get(TaskId(2)).is_none());
        assert_eq!(set.iter().count(), 2);
        assert_eq!(set.ids().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
    }

    #[test]
    fn utilization_sums() {
        let set = TaskSet::new(vec![paper_task(1), paper_task(1)]).unwrap();
        assert!((set.total_utilization() - 1.0).abs() < 1e-12);
        assert!((set.system_utilization(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "processor count must be positive")]
    fn system_utilization_rejects_zero_m() {
        let set = TaskSet::new(vec![paper_task(1)]).unwrap();
        let _ = set.system_utilization(0);
    }

    #[test]
    fn rm_order_sorts_by_period_then_index() {
        let a = TaskSpec::builder("a")
            .period(Span::from_millis(20))
            .mandatory(Span::from_millis(1))
            .build()
            .unwrap();
        let b = TaskSpec::builder("b")
            .period(Span::from_millis(10))
            .mandatory(Span::from_millis(1))
            .build()
            .unwrap();
        let c = TaskSpec::builder("c")
            .period(Span::from_millis(10))
            .mandatory(Span::from_millis(1))
            .build()
            .unwrap();
        let set = TaskSet::new(vec![a, b, c]).unwrap();
        assert_eq!(set.rm_order(), vec![TaskId(1), TaskId(2), TaskId(0)]);
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let mk = |ms| {
            TaskSpec::builder("t")
                .period(Span::from_millis(ms))
                .mandatory(Span::from_micros(1))
                .build()
                .unwrap()
        };
        let set = TaskSet::new(vec![mk(4), mk(6), mk(10)]).unwrap();
        assert_eq!(set.hyperperiod(), Span::from_millis(60));
    }

    #[test]
    fn display_is_informative() {
        let t = paper_task(3);
        let s = t.to_string();
        assert!(s.contains("τ1"), "{s}");
        assert!(s.contains("np=3"), "{s}");
    }
}
