//! Criterion benches over the figure-generating simulation runs: one bench
//! per overhead figure at representative np points, so regressions in the
//! simulator or scheduler state machine are caught as timing changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtseed::policy::AssignmentPolicy;
use rtseed_bench::run_paper_workload;
use rtseed_sim::BackgroundLoad;

fn bench_paper_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_workload_sim");
    group.sample_size(10);
    for np in [4usize, 57, 228] {
        group.bench_with_input(BenchmarkId::new("one_by_one_noload", np), &np, |b, &np| {
            b.iter(|| {
                run_paper_workload(
                    np,
                    AssignmentPolicy::OneByOne,
                    BackgroundLoad::NoLoad,
                    10,
                    0,
                )
            })
        });
    }
    for policy in AssignmentPolicy::PAPER_POLICIES {
        group.bench_with_input(
            BenchmarkId::new("np228_cpumem", policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    run_paper_workload(228, policy, BackgroundLoad::CpuMemoryLoad, 10, 0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_workload);
criterion_main!(benches);
