//! Criterion benches for the streaming technical-analysis indicators: each
//! optional part's per-tick work must be cheap relative to its window.

use criterion::{criterion_group, criterion_main, Criterion};
use rtseed_trading::indicators::{Atr, BollingerBands, Ema, Macd, Rsi, Sma, Stochastic};
use rtseed_trading::market::{collect_ticks, SyntheticFeed, Tick};

fn prices() -> Vec<f64> {
    collect_ticks(&mut SyntheticFeed::eur_usd(42), 10_000)
        .iter()
        .map(Tick::mid)
        .collect()
}

fn bench_indicators(c: &mut Criterion) {
    let prices = prices();
    let mut group = c.benchmark_group("indicators_10k_ticks");
    group.bench_function("sma20", |b| {
        b.iter(|| {
            let mut ind = Sma::new(20);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("ema20", |b| {
        b.iter(|| {
            let mut ind = Ema::new(20);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("bollinger20x2", |b| {
        b.iter(|| {
            let mut ind = BollingerBands::new(20, 2.0);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("rsi14", |b| {
        b.iter(|| {
            let mut ind = Rsi::new(14);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("macd_standard", |b| {
        b.iter(|| {
            let mut ind = Macd::standard();
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("stochastic14_3", |b| {
        b.iter(|| {
            let mut ind = Stochastic::new(14, 3);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.bench_function("atr14", |b| {
        b.iter(|| {
            let mut ind = Atr::new(14);
            for &p in &prices {
                ind.push(p);
            }
            ind.value()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_indicators);
criterion_main!(benches);
