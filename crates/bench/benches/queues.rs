//! Criterion benches for the scheduling substrate: the 99-level SCHED_FIFO
//! ready queue and the deterministic event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtseed_model::{Priority, Time};
use rtseed_sim::{EventQueue, FifoReadyQueue};

fn bench_ready_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_ready_queue");
    for n in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("enqueue_dequeue", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut q = FifoReadyQueue::new();
                    for i in 0..n {
                        let prio = Priority::new((i % 99 + 1) as u8).unwrap();
                        q.enqueue(prio, i);
                    }
                    while q.dequeue_highest().is_some() {}
                    q
                })
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(Time::from_nanos(((n - i) * 7) as u64), i);
                }
                while q.pop().is_some() {}
                q
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ready_queue, bench_event_queue);
criterion_main!(benches);
