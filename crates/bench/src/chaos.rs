//! Chaos harness for the serving layer: replay a seeded
//! [`ChaosPlan`](rtseed_sim::ChaosPlan) (churn × fault storm ×
//! submission burst) through a [`SessionManager`] and check the
//! graceful-degradation invariants.
//!
//! Shared by the `chaosbench` binary and the serving-layer chaos
//! proptests, so both enforce exactly the same properties:
//!
//! 1. **Compliant tenants never miss a mandatory deadline.** A tenant is
//!    *rogue* iff a WCET storm actually fired on one of its tasks (read
//!    back from the `wcet_fault` trace events, not predicted from the
//!    plan); everyone else keeps the admission-time guarantee even while
//!    rogues overrun, tenants churn, and the ladder sheds QoS. The
//!    overload supervisor is armed, so rogue demand is budget-cut at the
//!    analysed WCET and health enforcement quarantines/evicts repeat
//!    offenders.
//! 2. **Shed QoS never goes below the SLA floor**: every `qos_shed`
//!    trace event deploys an optional deadline at or above the tenant's
//!    floor.
//! 3. **Every submission reaches a terminal state** — no tenant is left
//!    `Pending` once the run drains.
//!
//! Byte-determinism (same seed ⇒ identical JSONL trace) is the caller's
//! third check: run [`run_chaos`] twice and compare
//! [`ChaosRun::trace_jsonl`].

use rtseed::obs::{export, TraceConfig, TraceEvent};
use rtseed::serve::{AdmissionConfig, GracefulConfig, HealthPolicy, SessionManager, ServeOutcome};
use rtseed::supervisor::SupervisorConfig;
use rtseed::{AssignmentPolicy, RunConfig};
use rtseed_analysis::PartitionHeuristic;
use rtseed_model::{Span, TenantId, TenantState, Topology};
use rtseed_sim::{chaos_plan, ChaosConfig};

/// One replay of a chaos scenario, with everything the invariant checks
/// need.
#[derive(Debug)]
pub struct ChaosRun {
    /// The seed the scenario was generated from.
    pub seed: u64,
    /// The serving-layer outcome (tenants, counters, trace, QoS).
    pub out: ServeOutcome,
    /// The full trace exported as JSONL — the byte-determinism witness.
    pub trace_jsonl: String,
    /// Tenants on whose tasks a WCET storm actually fired.
    pub rogues: Vec<TenantId>,
}

/// Replays the chaos scenario for `(cfg, seed)` on the eight-thread
/// quad-core topology with the supervisor armed and tenant health
/// enforcement on.
pub fn run_chaos(cfg: &ChaosConfig, seed: u64, jobs: u64) -> ChaosRun {
    run_chaos_with_admission(cfg, seed, jobs, AdmissionConfig::default())
}

/// [`run_chaos`] with an explicit admission-engine configuration — the
/// differential tests replay the *same* scenario under the incremental
/// sharded engine and the monolithic full-RTA oracle and demand
/// byte-identical traces.
pub fn run_chaos_with_admission(
    cfg: &ChaosConfig,
    seed: u64,
    jobs: u64,
    admission: AdmissionConfig,
) -> ChaosRun {
    let plan = chaos_plan(cfg, seed);
    let run = RunConfig {
        jobs,
        seed,
        trace: TraceConfig::enabled(),
        fault_plan: plan.faults.clone(),
        supervisor: SupervisorConfig::armed(),
        ..RunConfig::default()
    };
    let graceful = GracefulConfig {
        restore_hysteresis: Span::from_millis(50),
        health: HealthPolicy {
            enabled: true,
            ..HealthPolicy::default()
        },
        admission,
        ..GracefulConfig::default()
    };
    let mgr = SessionManager::with_graceful(
        Topology::quad_core_smt2(),
        PartitionHeuristic::WorstFitDecreasing,
        AssignmentPolicy::OneByOne,
        run,
        graceful,
    );
    let out = mgr.run_with_churn(&plan.churn);
    let trace_jsonl = export::jsonl(&out.outcome.trace);

    // Rogue classification from the trace: a storm that never fired (its
    // slot was rejected or departed first) makes nobody rogue.
    let mut rogues: Vec<TenantId> = Vec::new();
    for (_, ev) in out.outcome.trace.events() {
        if let TraceEvent::WcetFaultInjected { job, .. } = ev {
            let hit = out
                .tenants
                .iter()
                .find(|t| t.tasks.contains(&job.task))
                .map(|t| t.tenant);
            if let Some(tenant) = hit {
                if !rogues.contains(&tenant) {
                    rogues.push(tenant);
                }
            }
        }
    }

    ChaosRun {
        seed,
        out,
        trace_jsonl,
        rogues,
    }
}

/// Checks the graceful-degradation invariants over one replay. Returns
/// human-readable violations; an empty vector is a green run.
pub fn check_invariants(run: &ChaosRun) -> Vec<String> {
    let mut violations = Vec::new();

    // 1. Compliant tenants keep the admission-time guarantee.
    for t in &run.out.tenants {
        if run.rogues.contains(&t.tenant) {
            continue;
        }
        let misses = t.qos.deadline_misses();
        if misses > 0 {
            violations.push(format!(
                "seed {}: compliant tenant {} ({:?}) missed {} mandatory deadline(s)",
                run.seed, t.name, t.state, misses
            ));
        }
    }

    // 2. The shedding ladder never deploys below the SLA floor.
    for (at, ev) in run.out.outcome.trace.events() {
        if let TraceEvent::QosShed {
            tenant, od, floor, ..
        } = ev
        {
            if od < floor {
                violations.push(format!(
                    "seed {}: tenant {} shed to {} ns, below its floor {} ns at {} ns",
                    run.seed,
                    tenant.0,
                    od.as_nanos(),
                    floor.as_nanos(),
                    at.as_nanos()
                ));
            }
        }
    }

    // 3. Backpressure resolves every submission: nobody stays Pending.
    for t in &run.out.tenants {
        if t.state == TenantState::Pending {
            violations.push(format!(
                "seed {}: tenant {} left pending after the run drained",
                run.seed, t.name
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quick_chaos_run_is_green_and_deterministic() {
        let cfg = ChaosConfig::quick();
        let a = run_chaos(&cfg, 3, 8);
        let b = run_chaos(&cfg, 3, 8);
        assert_eq!(check_invariants(&a), Vec::<String>::new());
        assert_eq!(a.trace_jsonl, b.trace_jsonl, "same seed, different bytes");
        assert_eq!(a.out.counters, b.out.counters);
    }
}
