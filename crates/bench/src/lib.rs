//! Harness library shared by the figure/table binaries and the Criterion
//! benches (see DESIGN.md's experiment index).
//!
//! Every binary regenerates one artifact of the paper's evaluation (§V):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig10_mandatory_overhead` | Fig. 10 (a–c): Δm vs np |
//! | `fig11_switch_overhead` | Fig. 11 (a–c): Δs vs np |
//! | `fig12_begin_optional` | Fig. 12 (a–c): Δb vs np |
//! | `fig13_end_optional` | Fig. 13 (a–c): Δe vs np |
//! | `table1_termination` | Table I + behavioral consequences |
//! | `ablation_qos` | (extension) QoS vs np per policy |
//! | `ablation_partition` | (extension) partition heuristics |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod mcbench;

use rtseed::config::SystemConfig;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::{Outcome, RunConfig};
use rtseed::policy::AssignmentPolicy;
use rtseed::termination::TerminationMode;
use rtseed_model::{Span, TaskSet, TaskSpec, Topology};
use rtseed_sim::{BackgroundLoad, OverheadKind};

/// The paper's sweep of parallel-optional-part counts (§V-A).
pub const NP_SET: [usize; 8] = [4, 8, 16, 32, 57, 114, 171, 228];

/// Number of jobs per configuration (§V-A: "the number of jobs executed in
/// task τ1 is set to 100").
pub const PAPER_JOBS: u64 = 100;

/// The paper's evaluation task: T = 1 s, m = w = 250 ms, np optional parts
/// of 1 s each (always overrun, worst-case termination).
pub fn paper_task_set(np: usize) -> TaskSet {
    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_secs(1))
        .build()
        .expect("paper task is valid");
    TaskSet::new(vec![task]).expect("non-empty")
}

/// The paper's system configuration on the simulated Xeon Phi 3120A.
pub fn paper_config(np: usize, policy: AssignmentPolicy) -> SystemConfig {
    SystemConfig::build(paper_task_set(np), Topology::xeon_phi_3120a(), policy)
        .expect("paper workload is schedulable")
}

/// Runs the paper workload once and returns the outcome.
pub fn run_paper_workload(
    np: usize,
    policy: AssignmentPolicy,
    load: BackgroundLoad,
    jobs: u64,
    seed: u64,
) -> Outcome {
    let cfg = paper_config(np, policy);
    SimExecutor::new(
        cfg,
        RunConfig {
            jobs,
            load,
            seed,
            termination: TerminationMode::SigjmpTimer,
            ..Default::default()
        },
    )
    .run()
}

/// One series point of a figure: mean overhead for (np, policy, load).
#[derive(Debug, Clone, Copy)]
pub struct FigurePoint {
    /// Number of parallel optional parts.
    pub np: usize,
    /// Assignment policy.
    pub policy: AssignmentPolicy,
    /// Background load.
    pub load: BackgroundLoad,
    /// Mean of the overhead across jobs.
    pub mean: Span,
}

/// Sweeps the full paper grid (np × policy × load) for one overhead kind.
pub fn overhead_sweep(kind: OverheadKind, jobs: u64, seed: u64) -> Vec<FigurePoint> {
    let mut points = Vec::new();
    for load in BackgroundLoad::ALL {
        for policy in AssignmentPolicy::PAPER_POLICIES {
            for np in NP_SET {
                let out = run_paper_workload(np, policy, load, jobs, seed);
                points.push(FigurePoint {
                    np,
                    policy,
                    load,
                    mean: out.overheads.mean(kind),
                });
            }
        }
    }
    points
}

/// Unit used when rendering a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureUnit {
    /// Microseconds (Figs. 10–12).
    Micros,
    /// Milliseconds (Fig. 13).
    Millis,
}

impl FigureUnit {
    fn convert(self, s: Span) -> f64 {
        match self {
            FigureUnit::Micros => s.as_micros_f64(),
            FigureUnit::Millis => s.as_millis_f64(),
        }
    }

    fn label(self) -> &'static str {
        match self {
            FigureUnit::Micros => "us",
            FigureUnit::Millis => "ms",
        }
    }
}

/// Renders a figure's sweep as the three per-load tables the paper plots
/// ((a) no load, (b) CPU load, (c) CPU-Memory load), one row per np and
/// one column per assignment policy.
pub fn render_figure(title: &str, points: &[FigurePoint], unit: FigureUnit) -> String {
    let mut out = format!("# {title}\n");
    for (idx, load) in BackgroundLoad::ALL.iter().enumerate() {
        let tag = (b'a' + idx as u8) as char;
        out.push_str(&format!("\n({tag}) {load} — mean overhead [{}]\n", unit.label()));
        out.push_str(&format!(
            "{:>5} {:>14} {:>14} {:>14}\n",
            "np", "one-by-one", "two-by-two", "all-by-all"
        ));
        for np in NP_SET {
            let mut row = format!("{np:>5}");
            for policy in AssignmentPolicy::PAPER_POLICIES {
                let p = points
                    .iter()
                    .find(|p| p.np == np && p.policy == policy && p.load == *load)
                    .expect("full grid");
                row.push_str(&format!(" {:>14.2}", unit.convert(p.mean)));
            }
            out.push('\n');
            out.insert_str(out.len(), &row);
        }
        out.push('\n');
    }
    out
}

/// Renders the sweep as CSV (`figure,load,policy,np,mean_ns`).
pub fn render_csv(figure: &str, points: &[FigurePoint]) -> String {
    let mut out = String::from("figure,load,policy,np,mean_ns\n");
    for p in points {
        out.push_str(&format!(
            "{figure},{},{},{},{}\n",
            p.load,
            p.policy,
            p.np,
            p.mean.as_nanos()
        ));
    }
    out
}

/// Jobs for a harness run: `RTSEED_JOBS` env var or the paper's 100.
pub fn jobs_from_env() -> u64 {
    std::env::var("RTSEED_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PAPER_JOBS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_task_set_matches_section_5a() {
        let set = paper_task_set(57);
        let t = set.task(rtseed_model::TaskId(0));
        assert_eq!(t.period(), Span::from_secs(1));
        assert_eq!(t.mandatory(), Span::from_millis(250));
        assert_eq!(t.windup(), Span::from_millis(250));
        assert_eq!(t.optional_count(), 57);
        assert_eq!(t.optional_parts()[0], Span::from_secs(1));
    }

    #[test]
    fn np_set_matches_paper() {
        assert_eq!(NP_SET, [4, 8, 16, 32, 57, 114, 171, 228]);
    }

    #[test]
    fn sweep_covers_full_grid() {
        let points = overhead_sweep(OverheadKind::BeginMandatory, 2, 0);
        assert_eq!(points.len(), 3 * 3 * 8);
    }

    #[test]
    fn render_contains_all_rows() {
        let points = overhead_sweep(OverheadKind::BeginMandatory, 1, 0);
        let text = render_figure("Fig. 10", &points, FigureUnit::Micros);
        assert!(text.contains("(a) no-load"), "{text}");
        assert!(text.contains("(b) cpu"), "{text}");
        assert!(text.contains("(c) cpu-memory"), "{text}");
        for np in NP_SET {
            assert!(text.contains(&format!("{np:>5}")), "missing np={np}");
        }
        let csv = render_csv("fig10", &points);
        assert_eq!(csv.lines().count(), 1 + points.len());
    }
}
