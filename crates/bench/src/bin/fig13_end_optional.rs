//! Regenerates paper Fig. 13: overhead of ending the parallel optional
//! parts (Δe: timer interrupt + stack restore + wake-up signal) vs np.
//!
//! Pass `--show-placement` to also print the Fig. 8 placement maps for
//! 171 parts.

use rtseed::policy::AssignmentPolicy;
use rtseed_bench::{jobs_from_env, overhead_sweep, render_csv, render_figure, FigureUnit};
use rtseed_model::Topology;
use rtseed_sim::OverheadKind;

fn main() {
    if std::env::args().any(|a| a == "--show-placement") {
        let phi = Topology::xeon_phi_3120a();
        println!("Fig. 8 — per-core part counts for 171 parallel optional parts:");
        for policy in AssignmentPolicy::PAPER_POLICIES {
            let counts = policy.per_core_counts(&phi, 171);
            println!("  {policy}: {counts:?}");
        }
        println!();
    }
    let jobs = jobs_from_env();
    let points = overhead_sweep(OverheadKind::EndOptional, jobs, 0);
    println!(
        "{}",
        render_figure(
            "Fig. 13 — Overhead of ending the parallel optional parts (Δe)",
            &points,
            FigureUnit::Millis,
        )
    );
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", render_csv("fig13", &points));
    }
}
