//! Regenerates paper Fig. 10: overhead of beginning the mandatory part
//! (Δm) vs the number of parallel optional parts, under the three
//! background loads and three assignment policies.

use rtseed_bench::{jobs_from_env, overhead_sweep, render_csv, render_figure, FigureUnit};
use rtseed_sim::OverheadKind;

fn main() {
    let jobs = jobs_from_env();
    let points = overhead_sweep(OverheadKind::BeginMandatory, jobs, 0);
    println!(
        "{}",
        render_figure(
            "Fig. 10 — Overhead of beginning the mandatory part (Δm)",
            &points,
            FigureUnit::Micros,
        )
    );
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", render_csv("fig10", &points));
    }
}
