//! Ablation (beyond the paper): quantifies why RT-Seed chose *partitioned*
//! P-RMWP over *global* G-RMWP (paper §IV-B claim (i): "global scheduling
//! ... allows tasks to migrate among processors, resulting in high
//! overheads").
//!
//! The same task sets run under both executors; the global one counts
//! real-time part migrations and the execution time they add (cold-cache
//! refill per move). P-RMWP has zero migrations by construction.

use rtseed::config::SystemConfig;
use rtseed::exec_global::GlobalExecutor;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_model::{Span, Topology};

fn main() {
    let topo = Topology::new(4, 1).expect("valid topology");
    println!("G-RMWP vs P-RMWP — {} , 30 jobs/task, migration cost 100 µs\n", topo);
    println!(
        "{:>6} {:>6} | {:>10} {:>12} {:>12} | {:>10} {:>10}",
        "tasks", "ΣU", "migrations", "per-dispatch", "added [ms]", "G misses", "P misses"
    );
    for (tasks, util) in [(6usize, 1.5f64), (8, 2.0), (12, 2.5), (16, 3.0)] {
        let mut set = None;
        // Find a seed whose set both executors admit.
        for seed in 0..50u64 {
            let cand = generate(
                &TaskGenConfig {
                    tasks,
                    total_utilization: util,
                    period_min: Span::from_millis(20),
                    period_max: Span::from_millis(200),
                    optional_parts: (0, 2),
                    ..TaskGenConfig::default()
                },
                seed,
            );
            if SystemConfig::build(cand.clone(), topo, AssignmentPolicy::OneByOne).is_ok() {
                set = Some(cand);
                break;
            }
        }
        let Some(set) = set else {
            println!("{tasks:>6} {util:>6.1} | (no admissible set found)");
            continue;
        };
        let cfg = SystemConfig::build(set, topo, AssignmentPolicy::OneByOne)
            .expect("selected admissible");

        let global = GlobalExecutor::from_config(
            &cfg,
            RunConfig {
                jobs: 30,
                migration_cost: Span::from_micros(100),
                ..Default::default()
            },
        )
        .run();
        let partitioned = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 30,
                ..Default::default()
            },
        )
        .run();

        println!(
            "{:>6} {:>6.1} | {:>10} {:>12.3} {:>12.2} | {:>10} {:>10}",
            tasks,
            util,
            global.migrations,
            global.migrations as f64 / global.dispatches.max(1) as f64,
            global.migration_overhead.as_millis_f64(),
            global.qos.deadline_misses(),
            partitioned.qos.deadline_misses(),
        );
    }
    println!("\n(P-RMWP never migrates: mandatory/wind-up threads are pinned offline.)");
}
