//! Measures the four middleware overheads (Δm, Δb, Δs, Δe) on the *real*
//! host with the native backend — the paper's §V-B methodology executed
//! directly, with real background-load threads from
//! `rtseed::runtime::loadgen`.
//!
//! On an unprivileged or single-CPU machine the absolute values are
//! dominated by CFS scheduling noise (the `RuntimeReport` below says
//! whether SCHED_FIFO was granted); on an RT-enabled multi-core host this
//! harness reproduces the paper's measurement loop faithfully.

use rtseed::prelude::*;
use rtseed::runtime::loadgen::LoadGenerator;

fn config(np: usize) -> SystemConfig {
    let task = TaskSpec::builder("native-probe")
        .period(Span::from_millis(40))
        .mandatory(Span::from_millis(2))
        .windup(Span::from_millis(2))
        .optional_parts(np, Span::from_millis(15))
        .build()
        .expect("valid task");
    SystemConfig::build(
        TaskSet::new(vec![task]).expect("non-empty"),
        Topology::uniprocessor(),
        AssignmentPolicy::OneByOne,
    )
    .expect("schedulable")
}

fn main() {
    let jobs: u64 = std::env::var("RTSEED_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    println!("Native overhead measurement — {jobs} jobs per point, T = 40 ms\n");
    println!(
        "{:>12} {:>4} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "load", "np", "Δm mean", "Δb mean", "Δs mean", "Δe mean", "misses"
    );
    let mut report = None;
    for load in BackgroundLoad::ALL {
        let gen = LoadGenerator::one_per_cpu(load);
        for np in [1usize, 2, 4] {
            let run = RunConfig::builder()
                .jobs(jobs)
                .termination(TerminationMode::PeriodicCheck {
                    interval: Span::from_micros(200),
                })
                .build()
                .expect("valid run config");
            let exec = NativeExecutor::new(config(np), run);
            let out = exec
                .run(vec![TaskBody::new(
                    |_| {},
                    |_, _, ctl| {
                        while !ctl.should_stop() {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                    },
                    |_| {},
                )])
                .expect("native run");
            let means: String = OverheadKind::ALL
                .iter()
                .map(|&k| format!(" {:>12}", out.overheads.mean(k).to_string()))
                .collect();
            println!(
                "{:>12} {:>4}{means} {:>8}",
                load.to_string(),
                np,
                out.qos.deadline_misses(),
            );
            report.get_or_insert(out.runtime);
        }
        gen.stop();
    }
    if let Some(r) = report {
        println!("\nRuntime report (first run): {r:#?}");
    }
}
