//! `churnbench` — serving-layer benchmark: online admission throughput,
//! admission-decision latency, and QoS under tenant churn.
//!
//! A multi-tenant middleware's control plane must keep up with tenant
//! arrivals: every submission runs the full RMWP response-time analysis
//! against the resident population, so admission cost grows with
//! residency. This harness measures
//!
//! * **admission throughput** — tenants admitted per second when filling
//!   an empty machine to its first rejection (the admission test's cost
//!   on a *growing* resident set), and
//! * **churn replay** — wall-clock and scheduling events/sec of a full
//!   [`SessionManager`] run under a scripted arrive/depart plan, with the
//!   end-to-end QoS the admitted tenants achieved, and
//! * **burst arrivals** — the same replay metric when tenants arrive in
//!   same-instant bursts through the bounded submit queue (admission
//!   backpressure): whole bursts are decided in batched admission rounds,
//!   blocked requests retry with backoff, and the JSON records how many
//!   submissions were queued, retried and expired.
//!
//! Output is `BENCH_churnbench.json` in the same stable `{"schema": 1}`
//! shape `simbench` uses, so future PRs can diff the serving layer's perf
//! trajectory:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "churnbench",
//!   "mode": "full",
//!   "admission": [
//!     {"bench": "admit_quad_4x2", "config": {"cores": 4, "smt": 2},
//!      "admitted": 12, "repeats": 5, "wall_ms": 1.2,
//!      "admissions_per_sec": 10000.0, "wall_ms_min": 1.0,
//!      "admissions_per_sec_best": 12000.0}
//!   ],
//!   "churn": [
//!     {"bench": "churn_quad_4x2", "config": {"cores": 4, "smt": 2,
//!      "tenants": 12, "jobs": 20, "seed": 0, "burst": false},
//!      "events": 12345, "jobs": 200, "misses": 0, "enqueued": 0,
//!      "retries": 0, "expired": 0, "repeats": 5, "wall_ms": 9.8,
//!      "events_per_sec": 1000000.0, "wall_ms_min": 9.0,
//!      "events_per_sec_best": 1100000.0}
//!   ]
//! }
//! ```
//!
//! Usage:
//!
//! ```text
//! churnbench [--quick] [--out PATH] [--repeats N]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use rtseed::policy::AssignmentPolicy;
use rtseed::serve::SessionManager;
use rtseed::RunConfig;
use rtseed_analysis::{AdmissionController, PartitionHeuristic};
use rtseed_model::{QosFloor, Span, TaskSpec, Time, Topology};
use rtseed_sim::ChurnPlan;

/// The task set every benchmark tenant submits: one pipeline task, 8 %
/// mandatory+wind-up utilization, two optional parts.
fn tenant_tasks(i: usize) -> Vec<TaskSpec> {
    vec![TaskSpec::builder(format!("t{i}"))
        .period(Span::from_millis(50))
        .mandatory(Span::from_millis(2))
        .windup(Span::from_millis(2))
        .optional_parts(2, Span::from_millis(10))
        .build()
        .expect("benchmark spec is valid")]
}

struct AdmissionPoint {
    name: &'static str,
    cores: u32,
    smt: u32,
}

struct AdmissionMeasured {
    point: AdmissionPoint,
    admitted: usize,
    repeats: usize,
    wall_ms: f64,
    admissions_per_sec: f64,
    wall_ms_min: f64,
    admissions_per_sec_best: f64,
}

/// Fills an empty controller with single-task tenants until the first
/// rejection; returns (admitted, wall seconds). Cost grows with residency
/// — exactly the control-plane path a serving process pays per submission.
fn fill_to_rejection(cores: u32, smt: u32) -> (usize, f64) {
    let topo = Topology::new(cores, smt).expect("non-degenerate");
    let mut ctl = AdmissionController::new(
        topo.hw_threads() as usize,
        PartitionHeuristic::WorstFitDecreasing,
    );
    let start = Instant::now();
    let mut admitted = 0;
    loop {
        if ctl.try_admit(&tenant_tasks(admitted)).is_err() {
            break;
        }
        admitted += 1;
    }
    (admitted, start.elapsed().as_secs_f64())
}

fn measure_admission(point: AdmissionPoint, repeats: usize) -> AdmissionMeasured {
    let (admitted, _) = fill_to_rejection(point.cores, point.smt); // warmup
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let (a, wall) = fill_to_rejection(point.cores, point.smt);
            assert_eq!(a, admitted, "non-deterministic admission in {}", point.name);
            wall * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let wall_ms = walls[walls.len() / 2];
    let wall_ms_min = walls[0];
    AdmissionMeasured {
        admitted,
        repeats,
        wall_ms,
        admissions_per_sec: admitted as f64 / (wall_ms / 1e3),
        wall_ms_min,
        admissions_per_sec_best: admitted as f64 / (wall_ms_min / 1e3),
        point,
    }
}

struct ChurnPoint {
    name: &'static str,
    cores: u32,
    smt: u32,
    tenants: usize,
    jobs: u64,
    seed: u64,
    burst: bool,
}

struct ChurnMeasured {
    point: ChurnPoint,
    events: u64,
    jobs: u64,
    misses: u64,
    enqueued: u64,
    retries: u64,
    expired: u64,
    repeats: usize,
    wall_ms: f64,
    events_per_sec: f64,
    wall_ms_min: f64,
    events_per_sec_best: f64,
}

/// A deterministic plan: `tenants` staggered arrivals 10 ms apart, the
/// first half departing mid-run (so the survivors' optional deadlines are
/// recomputed under load).
fn churn_plan(tenants: usize) -> ChurnPlan {
    let mut plan = ChurnPlan::new();
    for i in 0..tenants {
        plan = plan.arrive(
            Time::from_nanos(i as u64 * 10_000_000),
            format!("t{i}"),
            tenant_tasks(i),
        );
    }
    for i in 0..tenants / 2 {
        plan = plan.depart(
            Time::from_nanos(400_000_000 + i as u64 * 10_000_000),
            format!("t{i}"),
        );
    }
    plan
}

/// Burst-arrival variant: tenants arrive through the bounded submit
/// queue in same-instant bursts of four, 40 ms apart, each with a 50 %
/// QoS floor and a 600 ms queue deadline; the first half departs mid-run
/// so retrying requests see freed capacity. The whole schedule of
/// rounds, retries and expiries is a pure function of the plan.
fn burst_plan(tenants: usize) -> ChurnPlan {
    let mut plan = ChurnPlan::new();
    let floor = QosFloor::fraction(0.5);
    for i in 0..tenants {
        plan = plan.submit(
            Time::from_nanos((i as u64 / 4) * 40_000_000),
            format!("t{i}"),
            tenant_tasks(i),
            floor,
            Span::from_millis(600),
        );
    }
    for i in 0..tenants / 2 {
        plan = plan.depart(
            Time::from_nanos(400_000_000 + i as u64 * 10_000_000),
            format!("t{i}"),
        );
    }
    plan
}

/// One churn replay: (events, jobs, misses, enqueued, retries, expired,
/// wall-ms).
fn run_churn(p: &ChurnPoint) -> (u64, u64, u64, u64, u64, u64, f64) {
    let topo = Topology::new(p.cores, p.smt).expect("non-degenerate");
    let run = RunConfig {
        jobs: p.jobs,
        seed: p.seed,
        ..RunConfig::default()
    };
    let mgr = SessionManager::new(
        topo,
        PartitionHeuristic::WorstFitDecreasing,
        AssignmentPolicy::OneByOne,
        run,
    );
    let plan = if p.burst {
        burst_plan(p.tenants)
    } else {
        churn_plan(p.tenants)
    };
    let start = Instant::now();
    let out = mgr.run_with_churn(&plan);
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (
        out.outcome.events_processed,
        out.outcome.qos.jobs(),
        out.outcome.qos.deadline_misses(),
        out.counters.enqueued,
        out.counters.retries,
        out.counters.expired,
        wall,
    )
}

fn measure_churn(point: ChurnPoint, repeats: usize) -> ChurnMeasured {
    let (events, jobs, misses, enqueued, retries, expired, _) = run_churn(&point); // warmup
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let (e, j, m, q, r, x, wall) = run_churn(&point);
            assert_eq!(
                (e, j, m, q, r, x),
                (events, jobs, misses, enqueued, retries, expired),
                "non-deterministic churn replay in {}",
                point.name
            );
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let wall_ms = walls[walls.len() / 2];
    let wall_ms_min = walls[0];
    ChurnMeasured {
        events,
        jobs,
        misses,
        enqueued,
        retries,
        expired,
        repeats,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        wall_ms_min,
        events_per_sec_best: events as f64 / (wall_ms_min / 1e3),
        point,
    }
}

fn render_json(mode: &str, adm: &[AdmissionMeasured], churn: &[ChurnMeasured]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"churnbench\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"admission\": [");
    for (i, m) in adm.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}}}, \
             \"admitted\": {}, \"repeats\": {}, \"wall_ms\": {:.3}, \
             \"admissions_per_sec\": {:.1}, \"wall_ms_min\": {:.3}, \
             \"admissions_per_sec_best\": {:.1}}}",
            p.name, p.cores, p.smt, m.admitted, m.repeats, m.wall_ms,
            m.admissions_per_sec, m.wall_ms_min, m.admissions_per_sec_best,
        );
        let _ = writeln!(out, "{}", if i + 1 < adm.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"churn\": [");
    for (i, m) in churn.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}, \
             \"tenants\": {}, \"jobs\": {}, \"seed\": {}, \"burst\": {}}}, \
             \"events\": {}, \"jobs\": {}, \"misses\": {}, \
             \"enqueued\": {}, \"retries\": {}, \"expired\": {}, \"repeats\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.1}, \
             \"wall_ms_min\": {:.3}, \"events_per_sec_best\": {:.1}}}",
            p.name, p.cores, p.smt, p.tenants, p.jobs, p.seed, p.burst,
            m.events, m.jobs, m.misses, m.enqueued, m.retries, m.expired,
            m.repeats, m.wall_ms,
            m.events_per_sec, m.wall_ms_min, m.events_per_sec_best,
        );
        let _ = writeln!(out, "{}", if i + 1 < churn.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_churnbench.json");
    let mut repeats: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--repeats needs a count"),
                )
            }
            other => {
                eprintln!("churnbench: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let repeats = repeats.unwrap_or(if quick { 3 } else { 5 });
    let mode = if quick { "quick" } else { "full" };
    let j = |full: u64, q: u64| if quick { q } else { full };

    let admission_points = vec![
        AdmissionPoint { name: "admit_quad_4x2", cores: 4, smt: 2 },
        AdmissionPoint { name: "admit_phi_57x4", cores: 57, smt: 4 },
    ];
    let mut adm = Vec::new();
    for point in admission_points {
        let name = point.name;
        let m = measure_admission(point, repeats);
        println!(
            "{name:>16}: {:>5} admitted, median {:>8.3} ms = {:>10.0} adm/s, \
             best {:>8.3} ms = {:>10.0} adm/s (n={repeats})",
            m.admitted, m.wall_ms, m.admissions_per_sec, m.wall_ms_min,
            m.admissions_per_sec_best
        );
        adm.push(m);
    }

    let churn_points = vec![
        ChurnPoint {
            name: "churn_quad_4x2",
            cores: 4,
            smt: 2,
            tenants: 12,
            jobs: j(40, 10),
            seed: 0,
            burst: false,
        },
        ChurnPoint {
            name: "churn_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 64,
            jobs: j(40, 10),
            seed: 0,
            burst: false,
        },
        ChurnPoint {
            name: "burst_quad_4x2",
            cores: 4,
            smt: 2,
            tenants: 12,
            jobs: j(40, 10),
            seed: 0,
            burst: true,
        },
        ChurnPoint {
            name: "burst_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 64,
            jobs: j(40, 10),
            seed: 0,
            burst: true,
        },
    ];
    let mut churn = Vec::new();
    for point in churn_points {
        let name = point.name;
        let m = measure_churn(point, repeats);
        println!(
            "{name:>16}: {:>8} events, {:>5} jobs, {} misses, {} queued, \
             {} retries, {} expired, median {:>8.3} ms = \
             {:>10.0} ev/s, best {:>8.3} ms = {:>10.0} ev/s (n={repeats})",
            m.events, m.jobs, m.misses, m.enqueued, m.retries, m.expired,
            m.wall_ms, m.events_per_sec, m.wall_ms_min, m.events_per_sec_best
        );
        churn.push(m);
    }

    let json = render_json(mode, &adm, &churn);
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("churnbench: wrote {out_path}");
    ExitCode::SUCCESS
}
