//! `churnbench` — serving-layer benchmark: online admission throughput,
//! admission-decision latency, and QoS under tenant churn.
//!
//! A multi-tenant middleware's control plane must keep up with tenant
//! arrivals: every submission runs the full RMWP response-time analysis
//! against the resident population, so admission cost grows with
//! residency. This harness measures
//!
//! * **admission throughput** — tenants admitted per second when filling
//!   an empty machine to its first rejection (the admission test's cost
//!   on a *growing* resident set), and
//! * **churn replay** — wall-clock and scheduling events/sec of a full
//!   [`SessionManager`] run under a scripted arrive/depart plan, with the
//!   end-to-end QoS the admitted tenants achieved, and
//! * **burst arrivals** — the same replay metric when tenants arrive in
//!   same-instant bursts through the bounded submit queue (admission
//!   backpressure): whole bursts are decided in batched admission rounds,
//!   blocked requests retry with backoff, and the JSON records how many
//!   submissions were queued, retried and expired.
//!
//! Output is `BENCH_churnbench.json` in the same stable `{"schema": 1}`
//! shape `simbench` uses, so future PRs can diff the serving layer's perf
//! trajectory:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "churnbench",
//!   "mode": "full",
//!   "admission": [
//!     {"bench": "admit_quad_4x2", "config": {"cores": 4, "smt": 2},
//!      "admitted": 12, "repeats": 5, "wall_ms": 1.2,
//!      "admissions_per_sec": 10000.0, "wall_ms_min": 1.0,
//!      "admissions_per_sec_best": 12000.0}
//!   ],
//!   "churn": [
//!     {"bench": "churn_quad_4x2", "config": {"cores": 4, "smt": 2,
//!      "tenants": 12, "jobs": 20, "seed": 0, "burst": false},
//!      "events": 12345, "jobs": 200, "misses": 0, "enqueued": 0,
//!      "retries": 0, "expired": 0, "repeats": 5, "wall_ms": 9.8,
//!      "events_per_sec": 1000000.0, "wall_ms_min": 9.0,
//!      "events_per_sec_best": 1100000.0}
//!   ]
//! }
//! ```
//!
//! * **tenant-scale sweeps** — 1k/10k-tenant fill-plus-churn scripts
//!   driven straight into the sharded admission controller, recording
//!   sustained admission throughput, p50/p99 decision latency and the
//!   incremental-RTA cache hit rate, with a monolithic full-RTA twin of
//!   the 1k point so the JSON pins down the incremental speedup.
//!
//! Usage:
//!
//! ```text
//! churnbench [--quick] [--out PATH] [--check BASELINE] [--repeats N]
//! ```
//!
//! * `--quick`     reduced sweep (fewer jobs/repeats, no 10k point) for CI;
//! * `--check B`   compare throughput per point against baseline JSON `B`
//!   and exit non-zero on a regression beyond the tolerance (30 % by
//!   default, `CHURNBENCH_TOLERANCE=0.5` to widen) — and require the
//!   1k-tenant incremental engine to beat its full-RTA twin by at least
//!   `CHURNBENCH_MIN_SPEEDUP` (default 10×).

use std::process::ExitCode;
use std::time::Instant;

use rtseed::policy::AssignmentPolicy;
use rtseed::serve::{AdmissionConfig, GracefulConfig, SessionManager};
use rtseed::RunConfig;
use rtseed_analysis::{AdmissionController, PartitionHeuristic, ShardedAdmission, TaskKey};
use rtseed_model::{QosFloor, Span, TaskSpec, Time, Topology};
use rtseed_sim::ChurnPlan;

/// The task set every benchmark tenant submits: one pipeline task, 8 %
/// mandatory+wind-up utilization, two optional parts.
fn tenant_tasks(i: usize) -> Vec<TaskSpec> {
    vec![TaskSpec::builder(format!("t{i}"))
        .period(Span::from_millis(50))
        .mandatory(Span::from_millis(2))
        .windup(Span::from_millis(2))
        .optional_parts(2, Span::from_millis(10))
        .build()
        .expect("benchmark spec is valid")]
}

struct AdmissionPoint {
    name: &'static str,
    cores: u32,
    smt: u32,
}

struct AdmissionMeasured {
    point: AdmissionPoint,
    admitted: usize,
    repeats: usize,
    wall_ms: f64,
    admissions_per_sec: f64,
    wall_ms_min: f64,
    admissions_per_sec_best: f64,
}

/// Fills an empty controller with single-task tenants until the first
/// rejection; returns (admitted, wall seconds). Cost grows with residency
/// — exactly the control-plane path a serving process pays per submission.
fn fill_to_rejection(cores: u32, smt: u32) -> (usize, f64) {
    let topo = Topology::new(cores, smt).expect("non-degenerate");
    let mut ctl = AdmissionController::new(
        topo.hw_threads() as usize,
        PartitionHeuristic::WorstFitDecreasing,
    );
    let start = Instant::now();
    let mut admitted = 0;
    loop {
        if ctl.try_admit(&tenant_tasks(admitted)).is_err() {
            break;
        }
        admitted += 1;
    }
    (admitted, start.elapsed().as_secs_f64())
}

fn measure_admission(point: AdmissionPoint, repeats: usize) -> AdmissionMeasured {
    let (admitted, _) = fill_to_rejection(point.cores, point.smt); // warmup
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let (a, wall) = fill_to_rejection(point.cores, point.smt);
            assert_eq!(a, admitted, "non-deterministic admission in {}", point.name);
            wall * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let wall_ms = walls[walls.len() / 2];
    let wall_ms_min = walls[0];
    AdmissionMeasured {
        admitted,
        repeats,
        wall_ms,
        admissions_per_sec: admitted as f64 / (wall_ms / 1e3),
        wall_ms_min,
        admissions_per_sec_best: admitted as f64 / (wall_ms_min / 1e3),
        point,
    }
}

struct ChurnPoint {
    name: &'static str,
    cores: u32,
    smt: u32,
    tenants: usize,
    jobs: u64,
    seed: u64,
    burst: bool,
    admission: AdmissionConfig,
}

struct ChurnMeasured {
    point: ChurnPoint,
    events: u64,
    jobs: u64,
    misses: u64,
    enqueued: u64,
    retries: u64,
    expired: u64,
    repeats: usize,
    wall_ms: f64,
    events_per_sec: f64,
    wall_ms_min: f64,
    events_per_sec_best: f64,
}

/// A deterministic plan: `tenants` staggered arrivals 10 ms apart, the
/// first half departing mid-run (so the survivors' optional deadlines are
/// recomputed under load).
fn churn_plan(tenants: usize) -> ChurnPlan {
    let mut plan = ChurnPlan::new();
    for i in 0..tenants {
        plan = plan.arrive(
            Time::from_nanos(i as u64 * 10_000_000),
            format!("t{i}"),
            tenant_tasks(i),
        );
    }
    for i in 0..tenants / 2 {
        plan = plan.depart(
            Time::from_nanos(400_000_000 + i as u64 * 10_000_000),
            format!("t{i}"),
        );
    }
    plan
}

/// Burst-arrival variant: tenants arrive through the bounded submit
/// queue in same-instant bursts of four, 40 ms apart, each with a 50 %
/// QoS floor and a 600 ms queue deadline; the first half departs mid-run
/// so retrying requests see freed capacity. The whole schedule of
/// rounds, retries and expiries is a pure function of the plan.
fn burst_plan(tenants: usize) -> ChurnPlan {
    let mut plan = ChurnPlan::new();
    let floor = QosFloor::fraction(0.5);
    for i in 0..tenants {
        plan = plan.submit(
            Time::from_nanos((i as u64 / 4) * 40_000_000),
            format!("t{i}"),
            tenant_tasks(i),
            floor,
            Span::from_millis(600),
        );
    }
    for i in 0..tenants / 2 {
        plan = plan.depart(
            Time::from_nanos(400_000_000 + i as u64 * 10_000_000),
            format!("t{i}"),
        );
    }
    plan
}

/// One churn replay: (events, jobs, misses, enqueued, retries, expired,
/// wall-ms).
fn run_churn(p: &ChurnPoint) -> (u64, u64, u64, u64, u64, u64, f64) {
    let topo = Topology::new(p.cores, p.smt).expect("non-degenerate");
    let run = RunConfig {
        jobs: p.jobs,
        seed: p.seed,
        ..RunConfig::default()
    };
    let mgr = SessionManager::with_graceful(
        topo,
        PartitionHeuristic::WorstFitDecreasing,
        AssignmentPolicy::OneByOne,
        run,
        GracefulConfig {
            admission: p.admission,
            ..GracefulConfig::default()
        },
    );
    let plan = if p.burst {
        burst_plan(p.tenants)
    } else {
        churn_plan(p.tenants)
    };
    let start = Instant::now();
    let out = mgr.run_with_churn(&plan);
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (
        out.outcome.events_processed,
        out.outcome.qos.jobs(),
        out.outcome.qos.deadline_misses(),
        out.counters.enqueued,
        out.counters.retries,
        out.counters.expired,
        wall,
    )
}

fn measure_churn(point: ChurnPoint, repeats: usize) -> ChurnMeasured {
    let (events, jobs, misses, enqueued, retries, expired, _) = run_churn(&point); // warmup
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let (e, j, m, q, r, x, wall) = run_churn(&point);
            assert_eq!(
                (e, j, m, q, r, x),
                (events, jobs, misses, enqueued, retries, expired),
                "non-deterministic churn replay in {}",
                point.name
            );
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let wall_ms = walls[walls.len() / 2];
    let wall_ms_min = walls[0];
    ChurnMeasured {
        events,
        jobs,
        misses,
        enqueued,
        retries,
        expired,
        repeats,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        wall_ms_min,
        events_per_sec_best: events as f64 / (wall_ms_min / 1e3),
        point,
    }
}

/// The task set a *scale-sweep* tenant submits: one pipeline task at 2 %
/// mandatory+wind-up utilization, so thousands of tenants fit one box.
fn scale_tenant_tasks(i: usize) -> Vec<TaskSpec> {
    vec![TaskSpec::builder(format!("s{i}"))
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(1))
        .windup(Span::from_millis(1))
        .optional_parts(1, Span::from_millis(10))
        .build()
        .expect("benchmark spec is valid")]
}

struct ScalePoint {
    name: &'static str,
    cores: u32,
    smt: u32,
    tenants: usize,
    /// Shard count for the sharded controller (0 = auto rule).
    shards: u32,
    /// Monolithic full-RTA mode — the oracle/baseline twin.
    full_rta: bool,
    /// Whether the point runs under `--quick` (the 10k sweep does not).
    quick: bool,
}

struct ScaleRun {
    decisions: usize,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    wall_ms: f64,
}

struct ScaleMeasured {
    point: ScalePoint,
    decisions: usize,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    repeats: usize,
    wall_ms: f64,
    admissions_per_sec: f64,
    wall_ms_min: f64,
    admissions_per_sec_best: f64,
    speedup_vs_full_rta: Option<f64>,
}

/// One scale run: fill the box with `tenants` single-task tenants, then
/// sustain churn by evicting the oldest quarter one at a time and
/// back-filling after each departure. Per-decision latency covers the
/// admission decisions only; the wall clock (and thus the sustained
/// throughput) also pays the evictions' OD restorations.
fn run_scale(p: &ScalePoint) -> ScaleRun {
    let topo = Topology::new(p.cores, p.smt).expect("non-degenerate");
    let mut ctl = ShardedAdmission::new(
        topo.hw_threads() as usize,
        PartitionHeuristic::WorstFitDecreasing,
        p.shards,
        p.full_rta,
    );
    let churned = p.tenants / 4;
    let mut lat_us: Vec<f64> = Vec::with_capacity(p.tenants + churned);
    let mut keys: Vec<Vec<TaskKey>> = Vec::with_capacity(p.tenants);
    let start = Instant::now();
    for i in 0..p.tenants {
        let tasks = scale_tenant_tasks(i);
        let t0 = Instant::now();
        let adm = ctl
            .try_admit(&tasks)
            .expect("scale sweep stays under capacity");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        keys.push(adm.tasks.iter().map(|t| t.key).collect());
    }
    for (i, evicted) in keys.iter().take(churned).enumerate() {
        ctl.evict(evicted);
        let tasks = scale_tenant_tasks(p.tenants + i);
        let t0 = Instant::now();
        ctl.try_admit(&tasks)
            .expect("the departure freed the capacity");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let stats = ctl.cache_stats();
    ScaleRun {
        decisions: lat_us.len(),
        p50_us: lat_us[lat_us.len() / 2],
        p99_us: lat_us[lat_us.len() * 99 / 100],
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        wall_ms,
    }
}

fn measure_scale(point: ScalePoint, repeats: usize) -> ScaleMeasured {
    let warm = run_scale(&point); // warmup
    let mut runs: Vec<ScaleRun> = (0..repeats)
        .map(|_| {
            let r = run_scale(&point);
            assert_eq!(
                (r.decisions, r.cache_hits, r.cache_misses),
                (warm.decisions, warm.cache_hits, warm.cache_misses),
                "non-deterministic scale sweep in {}",
                point.name
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| a.wall_ms.partial_cmp(&b.wall_ms).expect("finite"));
    let best = &runs[0];
    let median = &runs[runs.len() / 2];
    ScaleMeasured {
        decisions: warm.decisions,
        p50_us: median.p50_us,
        p99_us: median.p99_us,
        cache_hits: warm.cache_hits,
        cache_misses: warm.cache_misses,
        repeats,
        wall_ms: median.wall_ms,
        admissions_per_sec: warm.decisions as f64 / (median.wall_ms / 1e3),
        wall_ms_min: best.wall_ms,
        admissions_per_sec_best: warm.decisions as f64 / (best.wall_ms / 1e3),
        speedup_vs_full_rta: None,
        point,
    }
}

fn render_json(
    mode: &str,
    adm: &[AdmissionMeasured],
    churn: &[ChurnMeasured],
    scale: &[ScaleMeasured],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"churnbench\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"admission\": [");
    for (i, m) in adm.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}}}, \
             \"admitted\": {}, \"repeats\": {}, \"wall_ms\": {:.3}, \
             \"admissions_per_sec\": {:.1}, \"wall_ms_min\": {:.3}, \
             \"admissions_per_sec_best\": {:.1}}}",
            p.name, p.cores, p.smt, m.admitted, m.repeats, m.wall_ms,
            m.admissions_per_sec, m.wall_ms_min, m.admissions_per_sec_best,
        );
        let _ = writeln!(out, "{}", if i + 1 < adm.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"churn\": [");
    for (i, m) in churn.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}, \
             \"tenants\": {}, \"jobs\": {}, \"seed\": {}, \"burst\": {}}}, \
             \"events\": {}, \"jobs\": {}, \"misses\": {}, \
             \"enqueued\": {}, \"retries\": {}, \"expired\": {}, \"repeats\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.1}, \
             \"wall_ms_min\": {:.3}, \"events_per_sec_best\": {:.1}}}",
            p.name, p.cores, p.smt, p.tenants, p.jobs, p.seed, p.burst,
            m.events, m.jobs, m.misses, m.enqueued, m.retries, m.expired,
            m.repeats, m.wall_ms,
            m.events_per_sec, m.wall_ms_min, m.events_per_sec_best,
        );
        let _ = writeln!(out, "{}", if i + 1 < churn.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"scale\": [");
    for (i, m) in scale.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}, \
             \"tenants\": {}, \"shards\": {}, \"full_rta\": {}}}, \
             \"decisions\": {}, \"repeats\": {}, \"wall_ms\": {:.3}, \
             \"admissions_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
             \"wall_ms_min\": {:.3}, \"admissions_per_sec_best\": {:.1}",
            p.name, p.cores, p.smt, p.tenants, p.shards, p.full_rta,
            m.decisions, m.repeats, m.wall_ms,
            m.admissions_per_sec, m.p50_us, m.p99_us,
            m.cache_hits, m.cache_misses,
            m.cache_hits as f64 / (m.cache_hits + m.cache_misses).max(1) as f64,
            m.wall_ms_min, m.admissions_per_sec_best,
        );
        if let Some(s) = m.speedup_vs_full_rta {
            let _ = write!(out, ", \"speedup_vs_full_rta\": {s:.1}");
        }
        let _ = write!(out, "}}");
        let _ = writeln!(out, "{}", if i + 1 < scale.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Extracts the best throughput for `bench` from a baseline file in this
/// harness's own schema (a purpose-built scanner, not a general JSON
/// parser — the workspace is offline and the schema is ours).
fn baseline_best(baseline: &str, bench: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"bench\": \"{bench}\"");
    let at = baseline.find(&anchor)?;
    let point = &baseline[at + anchor.len()..];
    // Bound the scan at the next point's anchor so a missing field is not
    // satisfied by a neighbour.
    let point = &point[..point.find("\"bench\": ").unwrap_or(point.len())];
    let vs = point.find(key)? + key.len();
    let rest = &point[vs..];
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Regression gate: every point's best-of-repeats throughput must stay
/// within tolerance of the committed baseline, and the 1k-tenant
/// incremental engine must keep its order-of-magnitude lead over the
/// full-RTA twin.
fn check(
    adm: &[AdmissionMeasured],
    churn: &[ChurnMeasured],
    scale: &[ScaleMeasured],
    baseline_path: &str,
) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let tolerance: f64 = std::env::var("CHURNBENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let min_speedup: f64 = std::env::var("CHURNBENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let mut failures = Vec::new();
    // Best-of-repeats: robust to CI-host interference, which only ever
    // slows runs down — a genuine regression slows even the best run.
    let mut gate = |name: &str, best: f64, key: &str| {
        let Some(base) = baseline_best(&baseline, name, key) else {
            eprintln!("churnbench: no baseline for {name}, skipping");
            return;
        };
        let floor = base * (1.0 - tolerance);
        if best < floor {
            failures.push(format!(
                "{}: best {:.0} {} < {:.0} (baseline {:.0} − {:.0} %)",
                name,
                best,
                key.trim_start_matches('"').trim_end_matches("\": "),
                floor,
                base,
                tolerance * 100.0
            ));
        }
    };
    for m in adm {
        gate(
            m.point.name,
            m.admissions_per_sec_best,
            "\"admissions_per_sec_best\": ",
        );
    }
    for m in churn {
        gate(m.point.name, m.events_per_sec_best, "\"events_per_sec_best\": ");
    }
    for m in scale {
        gate(
            m.point.name,
            m.admissions_per_sec_best,
            "\"admissions_per_sec_best\": ",
        );
    }
    for m in scale {
        if let Some(s) = m.speedup_vs_full_rta {
            if s < min_speedup {
                failures.push(format!(
                    "{}: incremental speedup {s:.1}× over full RTA is below the \
                     required {min_speedup:.0}×",
                    m.point.name
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_churnbench.json");
    let mut baseline: Option<String> = None;
    let mut repeats: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => baseline = Some(args.next().expect("--check needs a path")),
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--repeats needs a count"),
                )
            }
            other => {
                eprintln!("churnbench: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let repeats = repeats.unwrap_or(if quick { 3 } else { 5 });
    let mode = if quick { "quick" } else { "full" };
    let j = |full: u64, q: u64| if quick { q } else { full };

    let admission_points = vec![
        AdmissionPoint { name: "admit_quad_4x2", cores: 4, smt: 2 },
        AdmissionPoint { name: "admit_phi_57x4", cores: 57, smt: 4 },
    ];
    let mut adm = Vec::new();
    for point in admission_points {
        let name = point.name;
        let m = measure_admission(point, repeats);
        println!(
            "{name:>16}: {:>5} admitted, median {:>8.3} ms = {:>10.0} adm/s, \
             best {:>8.3} ms = {:>10.0} adm/s (n={repeats})",
            m.admitted, m.wall_ms, m.admissions_per_sec, m.wall_ms_min,
            m.admissions_per_sec_best
        );
        adm.push(m);
    }

    let churn_points = vec![
        ChurnPoint {
            name: "churn_quad_4x2",
            cores: 4,
            smt: 2,
            tenants: 12,
            jobs: j(40, 10),
            seed: 0,
            burst: false,
            admission: AdmissionConfig::default(),
        },
        ChurnPoint {
            name: "churn_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 64,
            jobs: j(40, 10),
            seed: 0,
            burst: false,
            admission: AdmissionConfig::default(),
        },
        ChurnPoint {
            name: "burst_quad_4x2",
            cores: 4,
            smt: 2,
            tenants: 12,
            jobs: j(40, 10),
            seed: 0,
            burst: true,
            admission: AdmissionConfig::default(),
        },
        ChurnPoint {
            name: "burst_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 64,
            jobs: j(40, 10),
            seed: 0,
            burst: true,
            admission: AdmissionConfig::default(),
        },
        // The same Phi burst decided by parallel admission rounds over
        // eight shards — must reproduce the sequential decisions exactly
        // (the differential suite proves it; this point tracks the cost).
        ChurnPoint {
            name: "burst_parallel_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 64,
            jobs: j(40, 10),
            seed: 0,
            burst: true,
            admission: AdmissionConfig {
                shards: 8,
                parallel_rounds: true,
                full_rta: false,
            },
        },
    ];
    let mut churn = Vec::new();
    for point in churn_points {
        let name = point.name;
        let m = measure_churn(point, repeats);
        println!(
            "{name:>16}: {:>8} events, {:>5} jobs, {} misses, {} queued, \
             {} retries, {} expired, median {:>8.3} ms = \
             {:>10.0} ev/s, best {:>8.3} ms = {:>10.0} ev/s (n={repeats})",
            m.events, m.jobs, m.misses, m.enqueued, m.retries, m.expired,
            m.wall_ms, m.events_per_sec, m.wall_ms_min, m.events_per_sec_best
        );
        churn.push(m);
    }

    let scale_points = vec![
        ScalePoint {
            name: "scale_1k_phi_57x4",
            cores: 57,
            smt: 4,
            tenants: 1000,
            shards: 0,
            full_rta: false,
            quick: true,
        },
        ScalePoint {
            name: "scale_1k_phi_57x4_fullrta",
            cores: 57,
            smt: 4,
            tenants: 1000,
            shards: 1,
            full_rta: true,
            quick: true,
        },
        ScalePoint {
            name: "scale_10k_256x4",
            cores: 256,
            smt: 4,
            tenants: 10_000,
            shards: 0,
            full_rta: false,
            quick: false,
        },
    ];
    let mut scale = Vec::new();
    for point in scale_points {
        if quick && !point.quick {
            continue;
        }
        let name = point.name;
        let m = measure_scale(point, repeats);
        println!(
            "{name:>24}: {:>6} decisions, p50 {:>8.3} µs, p99 {:>8.3} µs, \
             cache {}/{} hit/miss, median {:>9.3} ms = {:>9.0} adm/s, \
             best {:>9.3} ms = {:>9.0} adm/s (n={repeats})",
            m.decisions, m.p50_us, m.p99_us, m.cache_hits, m.cache_misses,
            m.wall_ms, m.admissions_per_sec, m.wall_ms_min,
            m.admissions_per_sec_best
        );
        scale.push(m);
    }
    // Pin the incremental speedup on the 1k point: its full-RTA twin ran
    // the identical script through the monolithic analysis.
    if let Some(full_best) = scale
        .iter()
        .find(|m| m.point.name == "scale_1k_phi_57x4_fullrta")
        .map(|m| m.admissions_per_sec_best)
    {
        if let Some(inc) = scale
            .iter_mut()
            .find(|m| m.point.name == "scale_1k_phi_57x4")
        {
            let s = inc.admissions_per_sec_best / full_best;
            inc.speedup_vs_full_rta = Some(s);
            println!("       scale_1k speedup: {s:.1}× incremental over full RTA");
        }
    }

    let json = render_json(mode, &adm, &churn, &scale);
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("churnbench: wrote {out_path}");

    if let Some(baseline_path) = baseline {
        if let Err(failures) = check(&adm, &churn, &scale, &baseline_path) {
            eprintln!("churnbench: REGRESSION\n{failures}");
            return ExitCode::FAILURE;
        }
        println!("churnbench: within tolerance of {baseline_path}");
    }
    ExitCode::SUCCESS
}
