//! Renders paper Fig. 3: remaining-execution-time profiles of general
//! scheduling vs semi-fixed-priority scheduling for the evaluation task
//! (no higher-priority interference).

use rtseed::profile::{RemainingProfile, SchedulingMode};
use rtseed_model::{Span, TaskSpec};

fn main() {
    let task = TaskSpec::builder("τi")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(4, Span::from_secs(1))
        .build()
        .expect("valid task");
    let od = Span::from_millis(750);

    println!("Fig. 3 — remaining execution time R_i(t), T = D = 1 s, m = w = 250 ms, OD = 750 ms\n");
    for (label, mode) in [
        ("general scheduling (C = m + w contiguous)", SchedulingMode::General),
        ("semi-fixed-priority (m, sleep, w at OD)", SchedulingMode::SemiFixed),
    ] {
        let p = RemainingProfile::compute(&task, od, mode);
        println!("{label}:");
        print!("{}", p.ascii_plot(64));
        println!(
            "breakpoints: {:?}",
            p.points()
                .iter()
                .map(|(t, r)| format!("({t}, {r})"))
                .collect::<Vec<_>>()
        );
        println!(
            "pre-decision optional window: {}\n",
            p.optional_window()
        );
    }
}
