//! Regenerates paper Table I (termination mechanisms for parallel optional
//! parts) and demonstrates the behavioral consequences of each mechanism
//! on the paper workload: the sigsetjmp/siglongjmp mechanism terminates at
//! the deadline every job; the periodic check adds termination lag; the
//! try-catch mechanism loses the optional-deadline timer after the first
//! job (signal mask not restored) and later jobs miss their deadlines.

use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed::termination::{render_table1, TerminationMode};
use rtseed_bench::paper_config;
use rtseed_model::Span;

fn main() {
    println!("Table I — Implementation of the termination of parallel optional parts\n");
    println!("{}", render_table1());

    println!("Behavioral consequences (np = 57, 20 jobs, no load):\n");
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>12}",
        "mechanism", "jobs", "misses", "terminated", "QoS"
    );
    for mode in [
        TerminationMode::SigjmpTimer,
        TerminationMode::PeriodicCheck {
            interval: Span::from_millis(10),
        },
        TerminationMode::UnwindCatch,
    ] {
        let cfg = paper_config(57, AssignmentPolicy::OneByOne);
        let out = SimExecutor::new(
            cfg,
            RunConfig {
                jobs: 20,
                termination: mode,
                ..Default::default()
            },
        )
        .run();
        let (_, terminated, _) = out.qos.outcome_totals();
        println!(
            "{:<26} {:>8} {:>10} {:>12} {:>12.4}",
            mode.to_string(),
            out.qos.jobs(),
            out.qos.deadline_misses(),
            terminated,
            out.qos.aggregate_ratio(),
        );
    }
}
