//! `chaosbench` — seeded chaos harness for the serving layer's graceful
//! degradation: churn × WCET fault storms × submission bursts.
//!
//! Each seed generates a deterministic scenario
//! ([`rtseed_sim::chaos_plan`]): tenants submitting in same-instant
//! bursts through the bounded submit queue, scripted mid-run departures,
//! and WCET storms turning some tenants rogue. The scenario replays on a
//! [`SessionManager`](rtseed::serve::SessionManager) with the overload
//! supervisor armed and tenant health enforcement on, then three
//! invariants are checked (see [`rtseed_bench::chaos`]):
//!
//! 1. compliant tenants never miss a mandatory deadline;
//! 2. shed QoS never goes below the tenant's SLA floor;
//! 3. every submission reaches a terminal state.
//!
//! Every seed is replayed **twice** and the two JSONL traces must be
//! byte-identical — graceful degradation stays a pure function of
//! `(plan, seed)`.
//!
//! The process exits non-zero if any invariant (or the byte-identity
//! check) fails, so CI can gate on it. Output is
//! `BENCH_chaosbench.json` in the same stable `{"schema": 1}` shape the
//! other harnesses use:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "chaosbench",
//!   "mode": "full",
//!   "seeds": 16,
//!   "violations": 0,
//!   "runs": [
//!     {"seed": 0, "tenants": 24, "admitted": 20, "expired": 1,
//!      "evictions": 1, "rogues": 2, "qos_sheds": 3, "qos_restores": 5,
//!      "misses": 4, "compliant_misses": 0, "deterministic": true,
//!      "violations": []}
//!   ]
//! }
//! ```
//!
//! Usage:
//!
//! ```text
//! chaosbench [--quick] [--seeds N] [--jobs N] [--out PATH]
//! ```

use std::process::ExitCode;

use rtseed_bench::chaos::{check_invariants, run_chaos, ChaosRun};
use rtseed_sim::ChaosConfig;

struct SeedReport {
    run: ChaosRun,
    deterministic: bool,
    violations: Vec<String>,
}

fn compliant_misses(run: &ChaosRun) -> u64 {
    run.out
        .tenants
        .iter()
        .filter(|t| !run.rogues.contains(&t.tenant))
        .map(|t| t.qos.deadline_misses())
        .sum()
}

fn render_json(mode: &str, tenants: usize, reports: &[SeedReport]) -> String {
    use std::fmt::Write as _;
    let total: usize = reports
        .iter()
        .map(|r| r.violations.len() + usize::from(!r.deterministic))
        .sum();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"chaosbench\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"seeds\": {},", reports.len());
    let _ = writeln!(out, "  \"violations\": {total},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in reports.iter().enumerate() {
        let c = r.run.out.counters;
        let _ = write!(
            out,
            "    {{\"seed\": {}, \"tenants\": {}, \"admitted\": {}, \
             \"expired\": {}, \"evictions\": {}, \"rogues\": {}, \
             \"qos_sheds\": {}, \"qos_restores\": {}, \"misses\": {}, \
             \"compliant_misses\": {}, \"deterministic\": {}, \
             \"violations\": [",
            r.run.seed,
            tenants,
            c.admissions,
            c.expired,
            c.evictions,
            r.run.rogues.len(),
            c.qos_sheds,
            c.qos_restores,
            r.run.out.outcome.qos.deadline_misses(),
            compliant_misses(&r.run),
            r.deterministic,
        );
        for (j, v) in r.violations.iter().enumerate() {
            let sep = if j + 1 < r.violations.len() { ", " } else { "" };
            let _ = write!(out, "\"{}\"{sep}", v.replace('"', "'"));
        }
        let _ = write!(out, "]}}");
        let _ = writeln!(out, "{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seeds: Option<u64> = None;
    let mut jobs: Option<u64> = None;
    let mut out_path = String::from("BENCH_chaosbench.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seeds" => {
                seeds = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds needs a count"),
                )
            }
            "--jobs" => {
                jobs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a count"),
                )
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("chaosbench: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cfg = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::default()
    };
    let seeds = seeds.unwrap_or(if quick { 8 } else { 16 });
    let jobs = jobs.unwrap_or(if quick { 8 } else { 16 });
    let mode = if quick { "quick" } else { "full" };

    let mut reports = Vec::new();
    for seed in 0..seeds {
        let run = run_chaos(&cfg, seed, jobs);
        let replay = run_chaos(&cfg, seed, jobs);
        let deterministic = run.trace_jsonl == replay.trace_jsonl
            && run.out.counters == replay.out.counters;
        let mut violations = check_invariants(&run);
        if !deterministic {
            violations.push(format!("seed {seed}: replay was not byte-identical"));
        }
        let c = run.out.counters;
        println!(
            "seed {seed:>3}: {} admitted, {} expired, {} evicted, {} rogue(s), \
             {} sheds, {} restores, {} misses ({} compliant) — {}",
            c.admissions,
            c.expired,
            c.evictions,
            run.rogues.len(),
            c.qos_sheds,
            c.qos_restores,
            run.out.outcome.qos.deadline_misses(),
            compliant_misses(&run),
            if violations.is_empty() {
                "ok".to_string()
            } else {
                format!("{} VIOLATION(S)", violations.len())
            },
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        reports.push(SeedReport {
            run,
            deterministic,
            violations,
        });
    }

    let failed: usize = reports
        .iter()
        .map(|r| r.violations.len())
        .sum();
    let json = render_json(mode, cfg.tenants, &reports);
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("chaosbench: wrote {out_path}");
    if failed > 0 {
        eprintln!("chaosbench: {failed} violation(s) across {seeds} seed(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
