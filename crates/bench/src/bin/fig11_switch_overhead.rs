//! Regenerates paper Fig. 11: overhead of switching the mandatory thread
//! to the optional thread (Δs) vs the number of parallel optional parts.

use rtseed_bench::{jobs_from_env, overhead_sweep, render_csv, render_figure, FigureUnit};
use rtseed_sim::OverheadKind;

fn main() {
    let jobs = jobs_from_env();
    let points = overhead_sweep(OverheadKind::SwitchToOptional, jobs, 0);
    println!(
        "{}",
        render_figure(
            "Fig. 11 — Overhead of switching from mandatory thread to optional thread (Δs)",
            &points,
            FigureUnit::Micros,
        )
    );
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", render_csv("fig11", &points));
    }
}
