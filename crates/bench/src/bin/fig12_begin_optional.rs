//! Regenerates paper Fig. 12: overhead of beginning the parallel optional
//! parts (Δb, the pthread_cond_signal loop) vs np.

use rtseed_bench::{jobs_from_env, overhead_sweep, render_csv, render_figure, FigureUnit};
use rtseed_sim::OverheadKind;

fn main() {
    let jobs = jobs_from_env();
    let points = overhead_sweep(OverheadKind::BeginOptional, jobs, 0);
    println!(
        "{}",
        render_figure(
            "Fig. 12 — Overhead of the beginning of the parallel optional parts (Δb)",
            &points,
            FigureUnit::Millis,
        )
    );
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", render_csv("fig12", &points));
    }
}
