//! Ablation (beyond the paper): partitioned-assignment heuristics under
//! increasing utilization on random task sets — success rate and hardware
//! threads used, with the exact RMWP admission test.

use rtseed_analysis::partition::{Partition, PartitionHeuristic};
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_model::{Span, Topology};

fn main() {
    let topo = Topology::quad_core_smt2(); // 8 hardware threads
    let heuristics = [
        PartitionHeuristic::FirstFitDecreasing,
        PartitionHeuristic::BestFitDecreasing,
        PartitionHeuristic::WorstFitDecreasing,
    ];
    println!("Partition ablation — 8 hw threads, 16 tasks, 50 seeds per point\n");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "U", "first-fit-decr", "best-fit-decr", "worst-fit-decr"
    );
    println!(
        "{:>6} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
        "", "ok-rate", "threads", "ok-rate", "threads", "ok-rate", "threads"
    );
    for u10 in [20u32, 30, 40, 50, 60, 70] {
        let total_u = u10 as f64 / 10.0;
        print!("{total_u:>6.1}");
        for h in heuristics {
            let mut ok = 0usize;
            let mut threads = 0usize;
            let seeds = 50u64;
            for seed in 0..seeds {
                let cfg = TaskGenConfig {
                    tasks: 16,
                    total_utilization: total_u,
                    period_min: Span::from_millis(10),
                    period_max: Span::from_millis(1000),
                    ..TaskGenConfig::default()
                };
                let set = generate(&cfg, seed);
                if let Ok(p) = Partition::compute(&set, &topo, h) {
                    ok += 1;
                    threads += p.used_threads();
                }
            }
            let rate = ok as f64 / seeds as f64;
            let avg_threads = if ok > 0 {
                threads as f64 / ok as f64
            } else {
                f64::NAN
            };
            print!(" {rate:>11.2}{avg_threads:>11.2}");
        }
        println!();
    }
}
