//! `simbench` — dispatcher-throughput benchmark for the discrete-event
//! simulator, with a machine-readable output contract.
//!
//! Middleware-level scheduling results are only credible when dispatcher
//! overhead is measured and bounded (YASMIN, arXiv:2108.00730), so this
//! harness sweeps the simulator across topology size (1×1 → 57×4 → 128×4)
//! and task-set size, measures wall-clock time and events/sec with
//! warmup + repeat medians, and writes `BENCH_simbench.json` in a stable
//! schema that future PRs diff against to track the perf trajectory:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "simbench",
//!   "mode": "full",
//!   "points": [
//!     {"bench": "phi_57x4_np228", "config": {"cores": 57, "smt": 4,
//!      "tasks": 1, "np": 228, "jobs": 100, "seed": 0},
//!      "events": 123456, "repeats": 5, "wall_ms": 12.345,
//!      "events_per_sec": 10000000.0}
//!   ]
//! }
//! ```
//!
//! Usage:
//!
//! ```text
//! simbench [--quick] [--out PATH] [--check BASELINE] [--repeats N]
//! ```
//!
//! * `--quick`     reduced sweep (fewer jobs/repeats) for CI smoke runs;
//! * `--out PATH`  where to write the JSON (default `BENCH_simbench.json`);
//! * `--check B`   compare events/sec per point against baseline JSON `B`
//!   and exit non-zero if any point regresses more than the tolerance
//!   (30 % by default, `SIMBENCH_TOLERANCE=0.5` to widen).

use std::process::ExitCode;
use std::time::Instant;

use rtseed::config::SystemConfig;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_bench::paper_task_set;
use rtseed_model::{Span, TaskSet, Topology};

/// One sweep point: a named simulator configuration.
struct Point {
    name: &'static str,
    cores: u32,
    smt: u32,
    tasks: usize,
    /// Parallel optional parts of the paper task, or 0 when the task set
    /// comes from the generator (`tasks > 1`).
    np: usize,
    jobs: u64,
    seed: u64,
}

/// A measured sweep point. `wall_ms`/`events_per_sec` are the median of
/// the repeats; `wall_ms_min`/`events_per_sec_best` the fastest repeat.
/// On a contended host the minimum is the robust statistic — interference
/// only ever *adds* wall time — so regression checks compare best-of.
struct Measured {
    point: Point,
    events: u64,
    repeats: usize,
    wall_ms: f64,
    events_per_sec: f64,
    wall_ms_min: f64,
    events_per_sec_best: f64,
}

fn task_set(p: &Point) -> TaskSet {
    if p.tasks == 1 {
        paper_task_set(p.np)
    } else {
        generate(
            &TaskGenConfig {
                tasks: p.tasks,
                total_utilization: 0.5,
                period_min: Span::from_millis(10),
                period_max: Span::from_millis(500),
                optional_parts: (0, 4),
                ..TaskGenConfig::default()
            },
            p.seed,
        )
    }
}

fn run_once(cfg: &SystemConfig, jobs: u64, seed: u64) -> (u64, f64) {
    let run = RunConfig {
        jobs,
        seed,
        ..RunConfig::default()
    };
    let start = Instant::now();
    let out = SimExecutor::new(cfg.clone(), run).run();
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (out.events_processed, wall)
}

fn measure(point: Point, repeats: usize) -> Measured {
    let topo = Topology::new(point.cores, point.smt).expect("non-degenerate");
    let cfg = SystemConfig::build(task_set(&point), topo, AssignmentPolicy::OneByOne)
        .expect("sweep point is schedulable");
    // Warmup: populate allocator caches and branch predictors; also pins
    // down the event count, which must be identical across repeats (the
    // simulator is deterministic in the seed).
    let (events, _) = run_once(&cfg, point.jobs, point.seed);
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let (e, wall) = run_once(&cfg, point.jobs, point.seed);
            assert_eq!(e, events, "non-deterministic event count in {}", point.name);
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let wall_ms = walls[walls.len() / 2];
    let wall_ms_min = walls[0];
    Measured {
        events,
        repeats,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        wall_ms_min,
        events_per_sec_best: events as f64 / (wall_ms_min / 1e3),
        point,
    }
}

/// The sweep: topology size (1×1 → 57×4 → 128×4) at paper-style load,
/// plus task-set size on the paper's Xeon Phi 3120A.
fn sweep(quick: bool) -> Vec<Point> {
    let j = |full: u64, q: u64| if quick { q } else { full };
    vec![
        Point { name: "uni_1x1_np1", cores: 1, smt: 1, tasks: 1, np: 1, jobs: j(100, 20), seed: 0 },
        Point { name: "quad_4x2_np8", cores: 4, smt: 2, tasks: 1, np: 8, jobs: j(100, 20), seed: 0 },
        Point { name: "phi_57x4_np57", cores: 57, smt: 4, tasks: 1, np: 57, jobs: j(100, 10), seed: 0 },
        Point { name: "phi_57x4_np228", cores: 57, smt: 4, tasks: 1, np: 228, jobs: j(100, 10), seed: 0 },
        Point { name: "big_128x4_np512", cores: 128, smt: 4, tasks: 1, np: 512, jobs: j(100, 5), seed: 0 },
        Point { name: "phi_57x4_tasks8", cores: 57, smt: 4, tasks: 8, np: 0, jobs: j(200, 20), seed: 11 },
        Point { name: "phi_57x4_tasks32", cores: 57, smt: 4, tasks: 32, np: 0, jobs: j(200, 20), seed: 11 },
    ]
}

fn render_json(mode: &str, results: &[Measured]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"simbench\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"points\": [");
    for (i, m) in results.iter().enumerate() {
        let p = &m.point;
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"config\": {{\"cores\": {}, \"smt\": {}, \
             \"tasks\": {}, \"np\": {}, \"jobs\": {}, \"seed\": {}}}, \
             \"events\": {}, \"repeats\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.1}, \"wall_ms_min\": {:.3}, \
             \"events_per_sec_best\": {:.1}}}",
            p.name, p.cores, p.smt, p.tasks, p.np, p.jobs, p.seed,
            m.events, m.repeats, m.wall_ms, m.events_per_sec,
            m.wall_ms_min, m.events_per_sec_best,
        );
        let _ = writeln!(out, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Extracts the best events/sec for `bench` from a baseline file in this
/// harness's own schema (a purpose-built scanner, not a general JSON
/// parser — the workspace is offline and the schema is ours). Prefers
/// `events_per_sec_best`, falling back to the median field for baselines
/// written before the best-of statistic existed.
fn baseline_events_per_sec(baseline: &str, bench: &str) -> Option<f64> {
    let anchor = format!("\"bench\": \"{bench}\"");
    let at = baseline.find(&anchor)?;
    let point = &baseline[at + anchor.len()..];
    // Bound the scan at the next point's anchor so a missing field is not
    // satisfied by a neighbour.
    let point = &point[..point.find("\"bench\": ").unwrap_or(point.len())];
    let field = |key: &str| {
        let vs = point.find(key)? + key.len();
        let rest = &point[vs..];
        let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
        rest[..end].parse().ok()
    };
    field("\"events_per_sec_best\": ").or_else(|| field("\"events_per_sec\": "))
}

fn check(results: &[Measured], baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let tolerance: f64 = std::env::var("SIMBENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let mut failures = Vec::new();
    for m in results {
        let Some(base) = baseline_events_per_sec(&baseline, m.point.name) else {
            eprintln!("simbench: no baseline for {}, skipping", m.point.name);
            continue;
        };
        let floor = base * (1.0 - tolerance);
        // Best-of-repeats: robust to CI-host interference, which only ever
        // slows runs down — a genuine regression slows even the best run.
        if m.events_per_sec_best < floor {
            failures.push(format!(
                "{}: best {:.0} events/sec < {:.0} (baseline {:.0} − {:.0} %)",
                m.point.name,
                m.events_per_sec_best,
                floor,
                base,
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_simbench.json");
    let mut baseline: Option<String> = None;
    let mut repeats: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => baseline = Some(args.next().expect("--check needs a path")),
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--repeats needs a count"),
                )
            }
            other => {
                eprintln!("simbench: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let repeats = repeats.unwrap_or(if quick { 3 } else { 5 });
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::new();
    for point in sweep(quick) {
        let name = point.name;
        let m = measure(point, repeats);
        println!(
            "{name:>18}: {:>9} events, median {:>9.3} ms = {:>12.0} ev/s, \
             best {:>9.3} ms = {:>12.0} ev/s (n={repeats})",
            m.events, m.wall_ms, m.events_per_sec, m.wall_ms_min, m.events_per_sec_best
        );
        results.push(m);
    }

    let json = render_json(mode, &results);
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("simbench: wrote {out_path}");

    if let Some(baseline_path) = baseline {
        if let Err(report) = check(&results, &baseline_path) {
            eprintln!("simbench: events/sec regression against {baseline_path}:\n{report}");
            return ExitCode::FAILURE;
        }
        println!("simbench: no regression against {baseline_path}");
    }
    ExitCode::SUCCESS
}
