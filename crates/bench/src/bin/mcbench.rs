//! `mcbench` — the parallel Monte-Carlo experiment engine's CLI.
//!
//! Executes the seeded `(topology × task-set × fault-plan × policy)`
//! sweep (see `rtseed_bench::mcbench`) twice — once on one worker, once
//! on the full worker pool — asserts the two canonical results are
//! **byte-identical**, and writes `BENCH_mcbench.json` with per-worker
//! and aggregate throughput plus the heatmap cells:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "mcbench",
//!   "mode": "full",
//!   "seed": 0,
//!   "runs": 384,
//!   "total_events": 123456789,
//!   "canonical_hash": 1234567890123456789,
//!   "points": [
//!     {"bench": "workers_1", "workers": 1, "wall_ms": 1234.5,
//!      "events_per_sec": 1000000.0, "events_per_sec_best": 1000000.0},
//!     {"bench": "workers_8", "workers": 8, "wall_ms": 170.0,
//!      "events_per_sec": 7000000.0, "events_per_sec_best": 7000000.0,
//!      "speedup": 7.0,
//!      "per_worker": [{"runs": 48, "events": 15432098, "busy_ms": 160.0}]}
//!   ]
//! }
//! ```
//!
//! Usage:
//!
//! ```text
//! mcbench [--quick] [--seed S] [--workers N] [--out PATH]
//!         [--canonical PATH] [--check BASELINE]
//! ```
//!
//! * `--quick`          reduced grid for CI smoke runs;
//! * `--seed S`         sweep seed (default 0);
//! * `--workers N`      pool size (default: available parallelism);
//! * `--out PATH`       where to write the JSON (default `BENCH_mcbench.json`);
//! * `--canonical PATH` also write the canonical result JSON (the
//!   byte-identity witness CI diffs across two independent invocations);
//! * `--check B`        compare aggregate events/sec (and, on multicore
//!   hosts, pool speedup) against baseline `B`; exits non-zero on
//!   regression beyond `MCBENCH_TOLERANCE` (default 0.30). The speedup
//!   floor adapts to the host (`MCBENCH_MIN_SPEEDUP` to override):
//!   ≥16 cores → 10×, ≥8 → 4×, ≥4 → 2×, below that the gate is skipped.

use std::process::ExitCode;

use rtseed_bench::mcbench::{canonical_json, fnv1a64, run_sweep, SweepConfig, SweepRun};

fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// The host-adaptive speedup floor: the ISSUE's ≥10× target on big
/// hosts, proportionally less on small ones, no gate on single-digit
/// core counts where the pool cannot demonstrate it.
fn min_speedup(cores: usize) -> Option<f64> {
    if let Some(v) = env_f64("MCBENCH_MIN_SPEEDUP") {
        return (v > 0.0).then_some(v);
    }
    match cores {
        c if c >= 16 => Some(10.0),
        c if c >= 8 => Some(4.0),
        c if c >= 4 => Some(2.0),
        _ => None,
    }
}

struct Measured {
    label: String,
    run: SweepRun,
    events_per_sec: f64,
}

fn measure(cfg: &SweepConfig, workers: usize) -> Measured {
    let run = run_sweep(cfg, workers);
    let events_per_sec = run.result.total_events as f64 / (run.wall_ms / 1e3);
    Measured {
        label: format!("workers_{}", run.workers),
        run,
        events_per_sec,
    }
}

fn render_json(
    mode: &str,
    cfg: &SweepConfig,
    canonical_hash: u64,
    points: &[Measured],
    speedup: f64,
) -> String {
    use std::fmt::Write as _;
    let total_events = points[0].run.result.total_events;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"mcbench\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"runs\": {},", cfg.total_runs());
    let _ = writeln!(out, "  \"total_events\": {total_events},");
    let _ = writeln!(out, "  \"canonical_hash\": {canonical_hash},");
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, m) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"workers\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.1}, \"events_per_sec_best\": {:.1}, \"per_worker\": [",
            m.label, m.run.workers, m.run.wall_ms, m.events_per_sec, m.events_per_sec,
        );
        for (j, w) in m.run.per_worker.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"runs\": {}, \"events\": {}, \"busy_ms\": {:.3}, \
                 \"events_per_sec\": {:.1}}}",
                if j > 0 { ", " } else { "" },
                w.runs,
                w.events,
                w.busy_ms,
                w.events as f64 / (w.busy_ms.max(1e-9) / 1e3),
            );
        }
        let _ = write!(out, "]}}");
        let _ = writeln!(out, "{}", if i + 1 < points.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Extracts a numeric field for `bench` from a baseline in this
/// harness's own schema (purpose-built scanner; the workspace is
/// offline). The scan is bounded at the next point anchor so a missing
/// field is not satisfied by a neighbour.
fn baseline_field(baseline: &str, bench: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"bench\": \"{bench}\"");
    let at = baseline.find(&anchor)?;
    let point = &baseline[at + anchor.len()..];
    let point = &point[..point.find("\"bench\": ").unwrap_or(point.len())];
    let key = format!("\"{key}\": ");
    let vs = point.find(&key)? + key.len();
    let rest = &point[vs..];
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

fn check(points: &[Measured], speedup: f64, baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let tolerance = env_f64("MCBENCH_TOLERANCE").unwrap_or(0.30);
    let mut failures = Vec::new();
    for m in points {
        let base = baseline_field(&baseline, &m.label, "events_per_sec_best")
            .or_else(|| baseline_field(&baseline, &m.label, "events_per_sec"));
        let Some(base) = base else {
            eprintln!("mcbench: no baseline for {}, skipping", m.label);
            continue;
        };
        let floor = base * (1.0 - tolerance);
        if m.events_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} events/sec < {:.0} (baseline {:.0} − {:.0} %)",
                m.label,
                m.events_per_sec,
                floor,
                base,
                tolerance * 100.0
            ));
        }
    }
    let cores = available_workers();
    match min_speedup(cores) {
        Some(min) if points.last().map(|m| m.run.workers > 1).unwrap_or(false) => {
            if speedup < min {
                failures.push(format!(
                    "pool speedup {speedup:.2}× < required {min:.1}× on {cores} cores"
                ));
            }
        }
        _ => {
            println!("mcbench: speedup gate skipped ({cores} core(s) available)");
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 0u64;
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_mcbench.json");
    let mut canonical_path: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a u64")
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--workers needs a count"),
                )
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--canonical" => canonical_path = Some(args.next().expect("--canonical needs a path")),
            "--check" => baseline = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("mcbench: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let cfg = if quick {
        SweepConfig::quick(seed)
    } else {
        SweepConfig::full(seed)
    };
    let pool = workers.unwrap_or_else(available_workers).max(1);

    println!(
        "mcbench: {mode} sweep, {} runs ({} sim + {} chaos), seed {seed}",
        cfg.total_runs(),
        cfg.sim_runs(),
        cfg.chaos_cells
    );

    // Sequential reference first, then the pool; the canonical results
    // must match byte-for-byte — this is the determinism contract the
    // differential suite locks down, re-asserted on every invocation.
    let base = measure(&cfg, 1);
    let pooled = if pool > 1 { Some(measure(&cfg, pool)) } else { None };

    let canon = canonical_json(&cfg, &base.run.result);
    if let Some(p) = &pooled {
        let pooled_canon = canonical_json(&cfg, &p.run.result);
        assert_eq!(
            canon, pooled_canon,
            "workers=1 and workers={pool} disagree — determinism contract broken"
        );
    }
    let canonical_hash = fnv1a64(canon.as_bytes());

    let speedup = pooled
        .as_ref()
        .map(|p| p.events_per_sec / base.events_per_sec)
        .unwrap_or(1.0);

    let mut points = vec![base];
    if let Some(p) = pooled {
        points.push(p);
    }
    for m in &points {
        println!(
            "{:>12}: {:>10} events, {:>9.3} ms = {:>12.0} ev/s aggregate",
            m.label, m.run.result.total_events, m.run.wall_ms, m.events_per_sec
        );
        for (i, w) in m.run.per_worker.iter().enumerate() {
            println!(
                "              worker {i}: {} runs, {} events, {:.3} ms busy = {:.0} ev/s",
                w.runs,
                w.events,
                w.busy_ms,
                w.events as f64 / (w.busy_ms.max(1e-9) / 1e3)
            );
        }
    }
    println!("mcbench: pool speedup {speedup:.2}× (workers {pool}), canonical hash {canonical_hash}");

    let json = render_json(mode, &cfg, canonical_hash, &points, speedup);
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("mcbench: wrote {out_path}");
    if let Some(p) = canonical_path {
        std::fs::write(&p, &canon).expect("write canonical result");
        println!("mcbench: wrote {p}");
    }

    if let Some(baseline_path) = baseline {
        if let Err(report) = check(&points, speedup, &baseline_path) {
            eprintln!("mcbench: regression against {baseline_path}:\n{report}");
            return ExitCode::FAILURE;
        }
        println!("mcbench: no regression against {baseline_path}");
    }
    ExitCode::SUCCESS
}
