//! Ablation (beyond the paper): achieved QoS vs the number of parallel
//! optional parts for each assignment policy, using optional parts short
//! enough to sometimes complete (o = 400 ms against a ~560 ms window).
//!
//! The paper's conclusion argues One by One "has the potential to improve
//! QoS ... because it assigns parallel optional parts to cores in a
//! uniform manner"; this harness quantifies the QoS side on the simulated
//! Xeon Phi.

use rtseed::config::SystemConfig;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed_model::{Span, TaskSet, TaskSpec, Topology};

fn config(np: usize, policy: AssignmentPolicy) -> SystemConfig {
    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_millis(400))
        .build()
        .expect("valid task");
    SystemConfig::build(
        TaskSet::new(vec![task]).expect("non-empty"),
        Topology::xeon_phi_3120a(),
        policy,
    )
    .expect("schedulable")
}

fn main() {
    println!("QoS ablation — aggregate QoS ratio (achieved / requested optional execution)\n");
    println!(
        "{:>5} {:>14} {:>14} {:>14}",
        "np", "one-by-one", "two-by-two", "all-by-all"
    );
    // Sweep past the 228-thread capacity to show serialization effects.
    for np in [4usize, 8, 16, 32, 57, 114, 171, 228, 456] {
        print!("{np:>5}");
        for policy in AssignmentPolicy::PAPER_POLICIES {
            let out = SimExecutor::new(
                config(np, policy),
                RunConfig {
                    jobs: 10,
                    ..Default::default()
                },
            )
            .run();
            print!(" {:>14.4}", out.qos.aggregate_ratio());
        }
        println!();
    }
    println!("\n(np = 456 exceeds the 228 hardware threads: parts share threads and are");
    println!(" serialized by the FIFO queue, so the ratio drops — imprecision degrades");
    println!(" QoS, never correctness.)");
}
