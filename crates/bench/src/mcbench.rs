//! `mcbench` — parallel Monte-Carlo experiment engine.
//!
//! The paper's evaluation is a handful of hand-picked topology × task-set
//! points; the statistical extension (ROADMAP item 3) sweeps thousands of
//! seeded `(topology × task-set × fault-plan × policy)` simulations across
//! a worker pool and aggregates schedulability-heatmap grids
//! (utilisation × np × policy, per-cell success rate and QoS
//! percentiles). The same harness hosts the semi-partitioned /
//! semi-federated admissible-utilisation ablations (PAPERS.md).
//!
//! # Determinism contract
//!
//! The sweep is **byte-identical on 1 or N workers**:
//!
//! * every run's seeds are *pure* in `(sweep seed, run id)` — a
//!   [splitmix64](https://prng.di.unimi.it/splitmix64.c) mix, never
//!   worker-local generator state;
//! * workers pull run ids from an atomic counter (dynamic load balance)
//!   but results are keyed by run id and merged **order-independently**,
//!   then emitted canonically sorted;
//! * every summary field is integer-valued (nanoseconds, parts-per-million,
//!   counts), so no float formatting can diverge;
//! * each worker owns one [`ExecutorScratch`] reused across its whole run
//!   queue — `run_with_scratch` is bit-identical to a fresh executor (the
//!   scratch-reuse proptest in `tests/tests/mcbench.rs` is the license
//!   for this).
//!
//! [`canonical_json`] over the merged result is therefore the
//! determinism witness: `workers = 1` and `workers = N` produce the same
//! bytes, which the `mcbench` binary and the differential suite both
//! enforce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rtseed::config::SystemConfig;
use rtseed::exec_sim::{ExecutorScratch, SimExecutor};
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed::serve::AdmissionConfig;
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_model::{Span, Topology};
use rtseed_sim::{ChaosConfig, FaultPlan, FaultTarget, RandomOverruns};

use crate::chaos::{check_invariants, run_chaos_with_admission};

/// One level of the sweep's fault dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// Healthy machine: no fault plan.
    None,
    /// Seeded random WCET overruns on the mandatory parts, supervisor
    /// armed.
    Overruns,
}

impl FaultLevel {
    fn label(self) -> &'static str {
        match self {
            FaultLevel::None => "none",
            FaultLevel::Overruns => "overruns",
        }
    }
}

/// The sweep grid: the cross product of the axes times
/// [`runs_per_cell`](SweepConfig::runs_per_cell) seeded repetitions,
/// plus [`chaos_cells`](SweepConfig::chaos_cells) full serving-layer
/// chaos scenarios embedded as extra cells.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Root seed; every run seed is pure in `(seed, run id)`.
    pub seed: u64,
    /// Topology for every simulation cell (cores, smt).
    pub cores: u32,
    /// SMT width.
    pub smt: u32,
    /// Task-set sizes are fixed; the utilisation axis sweeps the total
    /// task-set utilisation across the whole topology.
    pub tasks: usize,
    /// Utilisation axis (total task-set utilisation).
    pub utils: Vec<f64>,
    /// np axis: upper bound on optional parts per task.
    pub nps: Vec<usize>,
    /// Policy axis.
    pub policies: Vec<AssignmentPolicy>,
    /// Fault-plan axis.
    pub faults: Vec<FaultLevel>,
    /// Seeded repetitions per cell.
    pub runs_per_cell: usize,
    /// Jobs per task per run.
    pub jobs: u64,
    /// Serving-layer chaos scenarios appended as extra cells.
    pub chaos_cells: usize,
}

impl SweepConfig {
    /// The full heatmap grid (hundreds of runs).
    pub fn full(seed: u64) -> SweepConfig {
        SweepConfig {
            seed,
            cores: 4,
            smt: 2,
            tasks: 8,
            utils: vec![2.0, 3.2, 4.8, 6.4],
            nps: vec![2, 4, 8],
            policies: vec![AssignmentPolicy::OneByOne, AssignmentPolicy::AllByAll],
            faults: vec![FaultLevel::None, FaultLevel::Overruns],
            runs_per_cell: 8,
            jobs: 100,
            chaos_cells: 4,
        }
    }

    /// A reduced grid for CI smoke runs and the differential suite.
    pub fn quick(seed: u64) -> SweepConfig {
        SweepConfig {
            seed,
            cores: 4,
            smt: 2,
            tasks: 6,
            utils: vec![2.0, 4.8],
            nps: vec![2, 4],
            policies: vec![AssignmentPolicy::OneByOne],
            faults: vec![FaultLevel::None, FaultLevel::Overruns],
            runs_per_cell: 2,
            jobs: 10,
            chaos_cells: 1,
        }
    }

    /// Number of simulation runs (excluding chaos cells).
    pub fn sim_runs(&self) -> usize {
        self.utils.len()
            * self.nps.len()
            * self.policies.len()
            * self.faults.len()
            * self.runs_per_cell
    }

    /// Total runs including chaos cells.
    pub fn total_runs(&self) -> usize {
        self.sim_runs() + self.chaos_cells
    }
}

/// splitmix64: the canonical 64-bit seed mixer. Pure, so run seeds
/// depend only on `(sweep seed, run id)` — never on worker scheduling.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64 over a byte string — the trace-byte witness carried by
/// chaos cells (the full JSONL would bloat the canonical output).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One expanded unit of work.
#[derive(Debug, Clone)]
enum RunSpec {
    Sim {
        util_idx: usize,
        np_idx: usize,
        policy_idx: usize,
        fault_idx: usize,
    },
    Chaos {
        chaos_idx: usize,
    },
}

/// Per-run summary — the streamed record of the sweep's stable JSON
/// schema. Every field is integer-valued so canonical emission is
/// byte-stable across hosts and worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Linear run id (position in the expanded grid).
    pub run_id: usize,
    /// `"sim"` or `"chaos"`.
    pub kind: &'static str,
    /// Cell label, e.g. `u3.2_np4_one-by-one_overruns` or `chaos0`.
    pub cell: String,
    /// The run's own seed (pure in the sweep seed and `run_id`).
    pub seed: u64,
    /// Whether the task set passed partitioning + priority assignment.
    pub schedulable: bool,
    /// Simulation events processed (0 for unschedulable runs).
    pub events: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Mandatory deadline misses.
    pub deadline_misses: u64,
    /// Mean achieved QoS in parts-per-million of requested.
    pub qos_mean_ppm: u64,
    /// Response-time p50 bucket bound, nanoseconds.
    pub response_p50_ns: u64,
    /// Response-time p99 bucket bound, nanoseconds.
    pub response_p99_ns: u64,
    /// Largest response time, nanoseconds.
    pub response_max_ns: u64,
    /// Chaos cells: FNV-1a 64 of the JSONL trace (0 for sim runs).
    pub trace_hash: u64,
    /// Chaos cells: graceful-degradation invariant violations.
    pub violations: u64,
}

/// One aggregated heatmap cell: success rate and QoS percentiles over
/// the cell's seeded repetitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSummary {
    /// Cell label (same naming as [`RunSummary::cell`]).
    pub cell: String,
    /// Utilisation level in parts-per-million (axis value × 10⁶).
    pub util_ppm: u64,
    /// np axis value.
    pub np: usize,
    /// Policy label.
    pub policy: String,
    /// Fault level label.
    pub fault: &'static str,
    /// Repetitions aggregated.
    pub runs: usize,
    /// Runs that were schedulable (admitted by partition + priority
    /// assignment).
    pub schedulable: usize,
    /// Runs that were schedulable *and* missed no mandatory deadline.
    pub success: usize,
    /// Median of the per-run mean QoS (ppm) across schedulable runs.
    pub qos_p50_ppm: u64,
    /// 90th percentile of per-run mean QoS (ppm); 0 when no run was
    /// schedulable.
    pub qos_p90_ppm: u64,
}

/// The merged, canonically ordered sweep result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepResult {
    /// Per-run summaries sorted by `run_id`.
    pub runs: Vec<RunSummary>,
    /// Heatmap cells in grid order (util-major, then np, policy, fault).
    pub cells: Vec<CellSummary>,
    /// Total simulation events across all runs.
    pub total_events: u64,
}

/// Per-worker execution statistics (timing side; *not* part of the
/// canonical result).
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Runs this worker executed.
    pub runs: usize,
    /// Events this worker processed.
    pub events: u64,
    /// Busy wall-clock, milliseconds.
    pub busy_ms: f64,
}

/// A timed sweep execution: the canonical [`SweepResult`] plus the
/// measurement side.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The canonical result (identical for any worker count).
    pub result: SweepResult,
    /// Worker count used.
    pub workers: usize,
    /// End-to-end wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Per-worker stats, in worker order.
    pub per_worker: Vec<WorkerStats>,
}

fn expand(cfg: &SweepConfig) -> Vec<RunSpec> {
    let mut specs = Vec::with_capacity(cfg.total_runs());
    for util_idx in 0..cfg.utils.len() {
        for np_idx in 0..cfg.nps.len() {
            for policy_idx in 0..cfg.policies.len() {
                for fault_idx in 0..cfg.faults.len() {
                    for _rep in 0..cfg.runs_per_cell {
                        specs.push(RunSpec::Sim {
                            util_idx,
                            np_idx,
                            policy_idx,
                            fault_idx,
                        });
                    }
                }
            }
        }
    }
    for chaos_idx in 0..cfg.chaos_cells {
        specs.push(RunSpec::Chaos { chaos_idx });
    }
    specs
}

fn policy_label(policy: AssignmentPolicy) -> String {
    format!("{policy}")
}

fn cell_label(cfg: &SweepConfig, util_idx: usize, np_idx: usize, policy_idx: usize, fault_idx: usize) -> String {
    format!(
        "u{:.1}_np{}_{}_{}",
        cfg.utils[util_idx],
        cfg.nps[np_idx],
        policy_label(cfg.policies[policy_idx]),
        cfg.faults[fault_idx].label()
    )
}

/// Executes one run of the sweep. Public so the differential suite can
/// replay individual cells against the pooled path; `scratch` is the
/// worker's reusable arena.
pub fn execute_run(
    cfg: &SweepConfig,
    run_id: usize,
    scratch: &mut ExecutorScratch,
) -> RunSummary {
    let specs = expand(cfg);
    execute_spec(cfg, run_id, &specs[run_id], scratch)
}

fn execute_spec(
    cfg: &SweepConfig,
    run_id: usize,
    spec: &RunSpec,
    scratch: &mut ExecutorScratch,
) -> RunSummary {
    let seed = splitmix64(cfg.seed ^ splitmix64(run_id as u64));
    match *spec {
        RunSpec::Sim {
            util_idx,
            np_idx,
            policy_idx,
            fault_idx,
        } => {
            let cell = cell_label(cfg, util_idx, np_idx, policy_idx, fault_idx);
            let set = generate(
                &TaskGenConfig {
                    tasks: cfg.tasks,
                    total_utilization: cfg.utils[util_idx],
                    period_min: Span::from_millis(10),
                    period_max: Span::from_millis(500),
                    optional_parts: (0, cfg.nps[np_idx]),
                    ..TaskGenConfig::default()
                },
                seed,
            );
            let topo = Topology::new(cfg.cores, cfg.smt).expect("non-degenerate sweep topology");
            let Ok(sys) = SystemConfig::build(set, topo, cfg.policies[policy_idx]) else {
                // Not schedulable at this utilisation: a heatmap data
                // point, not an error.
                return RunSummary {
                    run_id,
                    kind: "sim",
                    cell,
                    seed,
                    schedulable: false,
                    events: 0,
                    jobs: 0,
                    deadline_misses: 0,
                    qos_mean_ppm: 0,
                    response_p50_ns: 0,
                    response_p99_ns: 0,
                    response_max_ns: 0,
                    trace_hash: 0,
                    violations: 0,
                };
            };
            let fault_plan = match cfg.faults[fault_idx] {
                FaultLevel::None => FaultPlan::none(),
                FaultLevel::Overruns => {
                    FaultPlan::new(splitmix64(seed)).with_random_overruns(RandomOverruns {
                        probability: 0.05,
                        min_factor: 1.2,
                        max_factor: 2.0,
                        target: FaultTarget::Mandatory,
                    })
                }
            };
            let supervisor = match cfg.faults[fault_idx] {
                FaultLevel::None => rtseed::supervisor::SupervisorConfig::default(),
                FaultLevel::Overruns => rtseed::supervisor::SupervisorConfig::armed(),
            };
            let run = RunConfig {
                jobs: cfg.jobs,
                seed,
                fault_plan,
                supervisor,
                ..RunConfig::default()
            };
            let out = SimExecutor::new(sys, run).run_with_scratch(scratch);
            let resp = out.metrics.response_time();
            RunSummary {
                run_id,
                kind: "sim",
                cell,
                seed,
                schedulable: true,
                events: out.events_processed,
                jobs: out.qos.jobs(),
                deadline_misses: out.qos.deadline_misses(),
                qos_mean_ppm: out.metrics.qos_level().mean(),
                response_p50_ns: resp.quantile_bound(0.5),
                response_p99_ns: resp.quantile_bound(0.99),
                response_max_ns: resp.max(),
                trace_hash: 0,
                violations: 0,
            }
        }
        RunSpec::Chaos { chaos_idx } => {
            let chaos = run_chaos_with_admission(
                &ChaosConfig::quick(),
                seed,
                8,
                AdmissionConfig::default(),
            );
            let violations = check_invariants(&chaos).len() as u64;
            let resp = chaos.out.outcome.metrics.response_time();
            RunSummary {
                run_id,
                kind: "chaos",
                cell: format!("chaos{chaos_idx}"),
                seed,
                schedulable: true,
                events: chaos.out.outcome.events_processed,
                jobs: chaos.out.outcome.qos.jobs(),
                deadline_misses: chaos.out.outcome.qos.deadline_misses(),
                qos_mean_ppm: chaos.out.outcome.metrics.qos_level().mean(),
                response_p50_ns: resp.quantile_bound(0.5),
                response_p99_ns: resp.quantile_bound(0.99),
                response_max_ns: resp.max(),
                trace_hash: fnv1a64(chaos.trace_jsonl.as_bytes()),
                violations,
            }
        }
    }
}

fn aggregate(cfg: &SweepConfig, runs: &[RunSummary]) -> Vec<CellSummary> {
    let mut cells = Vec::new();
    let mut run_iter = runs.iter();
    for util_idx in 0..cfg.utils.len() {
        for np_idx in 0..cfg.nps.len() {
            for policy_idx in 0..cfg.policies.len() {
                for fault_idx in 0..cfg.faults.len() {
                    let reps: Vec<&RunSummary> =
                        run_iter.by_ref().take(cfg.runs_per_cell).collect();
                    let schedulable = reps.iter().filter(|r| r.schedulable).count();
                    let success = reps
                        .iter()
                        .filter(|r| r.schedulable && r.deadline_misses == 0)
                        .count();
                    let mut qos: Vec<u64> = reps
                        .iter()
                        .filter(|r| r.schedulable)
                        .map(|r| r.qos_mean_ppm)
                        .collect();
                    qos.sort_unstable();
                    let pct = |p: f64| -> u64 {
                        if qos.is_empty() {
                            return 0;
                        }
                        let rank = ((qos.len() as f64) * p).ceil().max(1.0) as usize;
                        qos[rank.min(qos.len()) - 1]
                    };
                    cells.push(CellSummary {
                        cell: cell_label(cfg, util_idx, np_idx, policy_idx, fault_idx),
                        util_ppm: (cfg.utils[util_idx] * 1e6).round() as u64,
                        np: cfg.nps[np_idx],
                        policy: policy_label(cfg.policies[policy_idx]),
                        fault: cfg.faults[fault_idx].label(),
                        runs: reps.len(),
                        schedulable,
                        success,
                        qos_p50_ppm: pct(0.5),
                        qos_p90_ppm: pct(0.9),
                    });
                }
            }
        }
    }
    cells
}

/// Runs the whole sweep on `workers` worker threads. Work distribution
/// is dynamic (atomic run-id counter) but results are merged by run id,
/// so the returned [`SweepResult`] is identical for any worker count.
pub fn run_sweep(cfg: &SweepConfig, workers: usize) -> SweepRun {
    let specs = expand(cfg);
    let workers = workers.clamp(1, specs.len().max(1));
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let mut merged: Vec<Option<RunSummary>> = vec![None; specs.len()];
    let mut per_worker = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let specs = &specs;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    // One scratch per worker, reused across its whole
                    // run queue; never shared across threads.
                    let mut scratch = ExecutorScratch::new();
                    let mut mine: Vec<(usize, RunSummary)> = Vec::new();
                    let busy = Instant::now();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        mine.push((i, execute_spec(cfg, i, &specs[i], &mut scratch)));
                    }
                    let busy_ms = busy.elapsed().as_secs_f64() * 1e3;
                    (mine, busy_ms)
                })
            })
            .collect();
        for h in handles {
            let (mine, busy_ms) = h.join().expect("mcbench worker panicked");
            let stats = WorkerStats {
                runs: mine.len(),
                events: mine.iter().map(|(_, r)| r.events).sum(),
                busy_ms,
            };
            for (i, r) in mine {
                merged[i] = Some(r);
            }
            per_worker.push(stats);
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let runs: Vec<RunSummary> = merged
        .into_iter()
        .map(|r| r.expect("every run id executed exactly once"))
        .collect();
    let total_events = runs.iter().map(|r| r.events).sum();
    let cells = aggregate(cfg, &runs);
    SweepRun {
        result: SweepResult {
            runs,
            cells,
            total_events,
        },
        workers,
        wall_ms,
        per_worker,
    }
}

/// Renders the canonical sweep JSON: per-run summaries plus heatmap
/// cells, all integer fields, sorted by run id / grid order. This is
/// the byte-identity witness — it contains **no timing** and no worker
/// information.
pub fn canonical_json(cfg: &SweepConfig, result: &SweepResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"bench\": \"mcbench\",");
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"total_events\": {},", result.total_events);
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in result.runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"run_id\": {}, \"kind\": \"{}\", \"cell\": \"{}\", \"seed\": {}, \
             \"schedulable\": {}, \"events\": {}, \"jobs\": {}, \"deadline_misses\": {}, \
             \"qos_mean_ppm\": {}, \"response_p50_ns\": {}, \"response_p99_ns\": {}, \
             \"response_max_ns\": {}, \"trace_hash\": {}, \"violations\": {}}}",
            r.run_id,
            r.kind,
            r.cell,
            r.seed,
            r.schedulable,
            r.events,
            r.jobs,
            r.deadline_misses,
            r.qos_mean_ppm,
            r.response_p50_ns,
            r.response_p99_ns,
            r.response_max_ns,
            r.trace_hash,
            r.violations,
        );
        let _ = writeln!(out, "{}", if i + 1 < result.runs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in result.cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cell\": \"{}\", \"util_ppm\": {}, \"np\": {}, \"policy\": \"{}\", \
             \"fault\": \"{}\", \"runs\": {}, \"schedulable\": {}, \"success\": {}, \
             \"qos_p50_ppm\": {}, \"qos_p90_ppm\": {}}}",
            c.cell,
            c.util_ppm,
            c.np,
            c.policy,
            c.fault,
            c.runs,
            c.schedulable,
            c.success,
            c.qos_p50_ppm,
            c.qos_p90_ppm,
        );
        let _ = writeln!(out, "{}", if i + 1 < result.cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_worker_equals_two_workers_bytewise() {
        let cfg = SweepConfig {
            chaos_cells: 0,
            runs_per_cell: 1,
            jobs: 4,
            ..SweepConfig::quick(7)
        };
        let a = run_sweep(&cfg, 1);
        let b = run_sweep(&cfg, 2);
        assert_eq!(a.result, b.result);
        assert_eq!(
            canonical_json(&cfg, &a.result),
            canonical_json(&cfg, &b.result)
        );
    }

    #[test]
    fn heatmap_cells_cover_the_grid_in_order() {
        let cfg = SweepConfig {
            chaos_cells: 0,
            runs_per_cell: 1,
            jobs: 2,
            ..SweepConfig::quick(3)
        };
        let run = run_sweep(&cfg, 1);
        assert_eq!(
            run.result.cells.len(),
            cfg.utils.len() * cfg.nps.len() * cfg.policies.len() * cfg.faults.len()
        );
        assert_eq!(run.result.cells[0].cell, "u2.0_np2_one-by-one_none");
        for c in &run.result.cells {
            assert!(c.success <= c.schedulable && c.schedulable <= c.runs);
        }
    }

    #[test]
    fn run_seeds_are_pure_in_the_sweep_seed() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        let cfg = SweepConfig::quick(9);
        let mut s1 = ExecutorScratch::new();
        let mut s2 = ExecutorScratch::new();
        let a = execute_run(&cfg, 0, &mut s1);
        let b = execute_run(&cfg, 0, &mut s2);
        assert_eq!(a, b);
    }
}
