//! End-to-end integration tests asserting the *shapes* of the paper's
//! evaluation (§V) on the simulated Xeon Phi: these are the claims
//! EXPERIMENTS.md records, executed with reduced job counts so the test
//! suite stays fast.

use rtseed::policy::AssignmentPolicy;
use rtseed_bench::{run_paper_workload, NP_SET};
use rtseed_model::Span;
use rtseed_sim::{BackgroundLoad, OverheadKind};

fn mean_us(np: usize, policy: AssignmentPolicy, load: BackgroundLoad, kind: OverheadKind) -> f64 {
    run_paper_workload(np, policy, load, 10, 0)
        .overheads
        .mean(kind)
        .as_micros_f64()
}

#[test]
fn fig10_dm_is_constant_in_np() {
    // "the overheads are approximately constant, regardless of the number
    // of parallel optional parts".
    for load in BackgroundLoad::ALL {
        let at_4 = mean_us(4, AssignmentPolicy::OneByOne, load, OverheadKind::BeginMandatory);
        let at_228 = mean_us(
            228,
            AssignmentPolicy::OneByOne,
            load,
            OverheadKind::BeginMandatory,
        );
        let ratio = at_228 / at_4;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{load}: Δm should be flat, got {at_4:.1} → {at_228:.1} µs"
        );
    }
}

#[test]
fn fig10_dm_load_ordering() {
    // NoLoad < CpuLoad < CpuMemoryLoad (Fig. 10a–c).
    let n = mean_us(57, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::BeginMandatory);
    let c = mean_us(57, AssignmentPolicy::OneByOne, BackgroundLoad::CpuLoad, OverheadKind::BeginMandatory);
    let m = mean_us(57, AssignmentPolicy::OneByOne, BackgroundLoad::CpuMemoryLoad, OverheadKind::BeginMandatory);
    assert!(n < c && c < m, "{n:.1} {c:.1} {m:.1}");
}

#[test]
fn fig11_ds_grows_unloaded_flat_loaded() {
    // Fig. 11a: grows with np, dramatic at 228; Fig. 11b–c: ~constant.
    let unloaded: Vec<f64> = NP_SET
        .iter()
        .map(|&np| {
            mean_us(np, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::SwitchToOptional)
        })
        .collect();
    assert!(
        unloaded.last().unwrap() > &(unloaded[0] * 3.0),
        "unloaded Δs should grow strongly: {unloaded:?}"
    );
    // The 171 → 228 step is the sharpest ("a dramatic increase").
    let step_small = unloaded[1] - unloaded[0];
    let step_surge = unloaded[7] - unloaded[6];
    assert!(step_surge > step_small * 5.0, "{unloaded:?}");

    for load in [BackgroundLoad::CpuLoad, BackgroundLoad::CpuMemoryLoad] {
        let a = mean_us(4, AssignmentPolicy::OneByOne, load, OverheadKind::SwitchToOptional);
        let b = mean_us(228, AssignmentPolicy::OneByOne, load, OverheadKind::SwitchToOptional);
        assert!((b / a) < 1.25, "{load}: loaded Δs should be flat: {a:.1} {b:.1}");
    }
}

#[test]
fn fig12_db_linear_and_cpu_worst() {
    // Fig. 12: linear in np; the CpuLoad curve sits ABOVE CpuMemoryLoad
    // (the signal path is branch-bound, §V-B's inversion).
    for load in BackgroundLoad::ALL {
        let at_57 = mean_us(57, AssignmentPolicy::OneByOne, load, OverheadKind::BeginOptional);
        let at_114 = mean_us(114, AssignmentPolicy::OneByOne, load, OverheadKind::BeginOptional);
        let at_228 = mean_us(228, AssignmentPolicy::OneByOne, load, OverheadKind::BeginOptional);
        assert!(
            (at_114 / at_57 - 2.0).abs() < 0.25 && (at_228 / at_114 - 2.0).abs() < 0.25,
            "{load}: Δb should be linear: {at_57:.0} {at_114:.0} {at_228:.0}"
        );
    }
    let cpu = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuLoad, OverheadKind::BeginOptional);
    let mem = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuMemoryLoad, OverheadKind::BeginOptional);
    let none = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::BeginOptional);
    assert!(cpu > mem && mem > none, "{cpu:.0} {mem:.0} {none:.0}");
}

#[test]
fn fig13_de_largest_overhead_and_mem_worst() {
    // "The overhead of ending the parallel optional parts is the largest
    // of all types of overhead"; CpuMemoryLoad > CpuLoad (inverse of Δb).
    let out = run_paper_workload(228, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, 10, 0);
    let de = out.overheads.mean(OverheadKind::EndOptional);
    for kind in [
        OverheadKind::BeginMandatory,
        OverheadKind::BeginOptional,
        OverheadKind::SwitchToOptional,
    ] {
        assert!(de > out.overheads.mean(kind), "Δe must dominate {kind:?}");
    }
    let cpu = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuLoad, OverheadKind::EndOptional);
    let mem = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuMemoryLoad, OverheadKind::EndOptional);
    assert!(mem > cpu, "{mem:.0} {cpu:.0}");
}

#[test]
fn fig13_policy_ordering_under_load() {
    // Figs. 13b–c: "the one by one assignment policy has the highest
    // overhead, whereas the all by all assignment policy has the lowest".
    for load in [BackgroundLoad::CpuLoad, BackgroundLoad::CpuMemoryLoad] {
        for np in [57usize, 114, 171, 228] {
            let one = mean_us(np, AssignmentPolicy::OneByOne, load, OverheadKind::EndOptional);
            let two = mean_us(np, AssignmentPolicy::TwoByTwo, load, OverheadKind::EndOptional);
            let all = mean_us(np, AssignmentPolicy::AllByAll, load, OverheadKind::EndOptional);
            assert!(
                one > two && two >= all,
                "{load} np={np}: {one:.0} {two:.0} {all:.0}"
            );
        }
    }
}

#[test]
fn fig13_policies_similar_unloaded() {
    // Fig. 13a: "all assignment policies have approximately the same
    // overheads".
    let one = mean_us(171, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::EndOptional);
    let all = mean_us(171, AssignmentPolicy::AllByAll, BackgroundLoad::NoLoad, OverheadKind::EndOptional);
    assert!((one / all) < 1.15, "{one:.0} vs {all:.0}");
}

#[test]
fn de_grows_linearly_with_np() {
    // Time complexity O(np_i) (§V-B).
    let at_57 = mean_us(57, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::EndOptional);
    let at_228 = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::NoLoad, OverheadKind::EndOptional);
    assert!(((at_228 / at_57) - 4.0).abs() < 0.8, "{at_57:.0} {at_228:.0}");
}

#[test]
fn paper_magnitudes_match_figure_axes() {
    // Coarse absolute calibration (the axes of Figs. 10–13).
    let dm = mean_us(57, AssignmentPolicy::OneByOne, BackgroundLoad::CpuMemoryLoad, OverheadKind::BeginMandatory);
    assert!((100.0..300.0).contains(&dm), "Δm CpuMem ≈ 250 µs, got {dm:.0}");
    let db = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuLoad, OverheadKind::BeginOptional);
    assert!((7_000.0..13_000.0).contains(&db), "Δb CPU@228 ≈ 10 ms, got {db:.0} µs");
    let de = mean_us(228, AssignmentPolicy::OneByOne, BackgroundLoad::CpuMemoryLoad, OverheadKind::EndOptional);
    assert!(
        (40_000.0..62_000.0).contains(&de),
        "Δe CpuMem@228 ≈ 50 ms, got {de:.0} µs"
    );
}

#[test]
fn all_np_policies_loads_meet_deadlines() {
    // The paper workload is schedulable by construction; the measured
    // overheads must fit in the WCET headroom everywhere on the grid.
    for load in BackgroundLoad::ALL {
        for policy in AssignmentPolicy::PAPER_POLICIES {
            for np in NP_SET {
                let out = run_paper_workload(np, policy, load, 3, 1);
                assert_eq!(
                    out.qos.deadline_misses(),
                    0,
                    "missed deadlines at np={np} {policy} {load}"
                );
                assert_eq!(out.qos.jobs(), 3);
            }
        }
    }
}

#[test]
fn optional_deadline_equals_d_minus_w() {
    // §V-A: OD1 = D1 − w1 for the single-task evaluation.
    let cfg = rtseed_bench::paper_config(57, AssignmentPolicy::OneByOne);
    assert_eq!(
        cfg.optional_deadline(rtseed_model::TaskId(0)),
        Span::from_millis(750)
    );
}
