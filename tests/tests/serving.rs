//! Integration tests for the multi-tenant serving layer: admission
//! decisions cross-checked against the offline RMWP analysis, eviction
//! freeing capacity, concurrent tenants with per-tenant accounting, and
//! deterministic churn replay.

use rtseed::obs::{export, TraceConfig};
use rtseed::serve::{SessionManager, Submission};
use rtseed::{AssignmentPolicy, RunConfig};
use rtseed_analysis::rmwp::RmwpAnalysis;
use rtseed_analysis::PartitionHeuristic;
use rtseed_model::{Span, TaskSet, TaskSpec, TenantState, Time, Topology};
use rtseed_sim::ChurnPlan;
use rtseed_trading::imprecise::desk_task_set;

fn brick(name: &str) -> TaskSpec {
    TaskSpec::builder(name)
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(15))
        .windup(Span::from_millis(15))
        .optional_parts(1, Span::from_millis(10))
        .build()
        .unwrap()
}

fn uni_manager(jobs: u64) -> SessionManager {
    SessionManager::new(
        Topology::uniprocessor(),
        PartitionHeuristic::FirstFitDecreasing,
        AssignmentPolicy::OneByOne,
        RunConfig {
            jobs,
            ..RunConfig::default()
        },
    )
}

/// The online admission decision agrees with the offline RMWP analysis
/// *exactly*: on a uniprocessor, tenant k+1 is admitted iff the offline
/// analysis finds the (k+1)-task set schedulable — the serving layer
/// rejects at precisely the k where `RmwpAnalysis` first fails, not one
/// tenant earlier (too conservative) or later (unsafe).
#[test]
fn rejection_happens_exactly_where_offline_rmwp_fails() {
    let mut mgr = uni_manager(1);
    let mut resident: Vec<TaskSpec> = Vec::new();
    let mut first_rejected = None;
    for k in 0..16 {
        let spec = brick(&format!("t{k}"));
        let offline = {
            let mut candidate = resident.clone();
            candidate.push(spec.clone());
            RmwpAnalysis::analyze(&TaskSet::new(candidate).unwrap())
        };
        let online = mgr.submit(Submission::new(format!("tenant{k}"), std::slice::from_ref(&spec)));
        assert_eq!(
            online.is_ok(),
            offline.is_ok(),
            "tenant {k}: online admission and offline RMWP analysis disagree"
        );
        if online.is_ok() {
            resident.push(spec);
        } else if first_rejected.is_none() {
            first_rejected = Some(k);
        }
    }
    // 30 ms of mandatory+wind-up per 100 ms period: the RMWP test (which
    // charges wind-up interference on the optional deadline) fits exactly
    // two bricks on one CPU.
    assert_eq!(first_rejected, Some(2));
    assert_eq!(mgr.admitted_tenants(), 2);
    let out = mgr.run();
    assert_eq!(out.outcome.qos.deadline_misses(), 0);
}

/// Departure frees exactly the evicted utilization: a tenant rejected at
/// full occupancy is admitted after one resident leaves, and the freed
/// residents' optional deadlines grow back.
#[test]
fn eviction_frees_utilization_for_readmission() {
    let mut mgr = uni_manager(2);
    for k in 0..2 {
        mgr.submit(Submission::new(format!("tenant{k}"), [brick(&format!("t{k}"))]))
            .unwrap();
    }
    let full = mgr.total_utilization();
    let err = mgr.submit(Submission::new("third", [brick("t2")])).unwrap_err();
    assert!(matches!(err, rtseed::ServeError::Unschedulable { .. }));
    assert_eq!(mgr.state_of("third"), Some(TenantState::Rejected));

    assert!(mgr.depart("tenant1").is_ok());
    assert!(mgr.total_utilization() < full);
    mgr.submit(Submission::new("third", [brick("t2")]))
        .expect("eviction freed exactly one brick of utilization");
    assert_eq!(mgr.state_of("third"), Some(TenantState::Admitted));
    assert_eq!(mgr.admitted_tenants(), 2);

    let out = mgr.run();
    assert_eq!(out.counters.rejections, 1);
    assert_eq!(out.counters.departures, 1);
    assert_eq!(out.outcome.qos.deadline_misses(), 0);
    assert_eq!(out.tenant("third").unwrap().qos.jobs(), 2);
}

/// One process serves eight concurrently admitted trading-desk tenants,
/// each with its own QoS outcome and a trace slice containing only its
/// jobs; an over-subscribed ninth desk is rejected by admission, never
/// reaching the schedule (zero deadline misses across the run).
#[test]
fn eight_trading_desks_one_process() {
    let mut mgr = SessionManager::new(
        Topology::quad_core_smt2(),
        PartitionHeuristic::WorstFitDecreasing,
        AssignmentPolicy::OneByOne,
        RunConfig {
            jobs: 5,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        },
    );
    for i in 0..8 {
        let desk = desk_task_set(
            &format!("desk{i}"),
            &["EURUSD", "USDJPY"],
            2,
            Span::from_millis(50),
        )
        .unwrap();
        mgr.submit(Submission::new(format!("desk{i}"), desk)).unwrap();
    }
    assert_eq!(mgr.admitted_tenants(), 8);

    // A desk that over-subscribes any single CPU is turned away up front.
    let greedy = vec![TaskSpec::builder("greedy")
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(60))
        .windup(Span::from_millis(35))
        .build()
        .unwrap()];
    assert!(mgr.submit(Submission::new("greedy", greedy)).is_err());

    let out = mgr.run();
    assert_eq!(out.counters.admissions, 8);
    assert_eq!(out.counters.rejections, 1);
    assert_eq!(out.outcome.qos.deadline_misses(), 0);
    assert_eq!(out.outcome.qos.jobs(), 8 * 2 * 5);
    for i in 0..8 {
        let t = out.tenant(&format!("desk{i}")).unwrap();
        assert_eq!(t.state, TenantState::Admitted);
        assert_eq!(t.qos.jobs(), 2 * 5, "desk{i} runs both symbols to quota");
        assert_eq!(t.qos.deadline_misses(), 0);
        assert_eq!(t.tasks.len(), 2);
        // The tenant-scoped trace covers this desk's jobs and nothing else.
        let tr = out.tenant_trace(t.tenant);
        assert!(!tr.is_empty());
        for (_, ev) in tr.events() {
            if let Some(job) = ev.job() {
                assert!(t.tasks.contains(&job.task), "foreign job in desk{i}'s trace");
            }
        }
    }
}

/// Replaying the same churn plan twice produces byte-identical JSONL
/// traces — admissions, rejections, evictions and the full schedule are a
/// pure function of (plan, seed).
#[test]
fn churn_replay_is_byte_deterministic() {
    let plan = || {
        ChurnPlan::new()
            .arrive(
                Time::ZERO,
                "a",
                desk_task_set("a", &["EURUSD"], 2, Span::from_millis(50)).unwrap(),
            )
            .arrive(
                Time::from_nanos(70_000_000),
                "b",
                desk_task_set("b", &["USDJPY"], 3, Span::from_millis(50)).unwrap(),
            )
            .depart(Time::from_nanos(200_000_000), "a")
            .arrive(
                Time::from_nanos(260_000_000),
                "c",
                desk_task_set("c", &["GBPUSD"], 2, Span::from_millis(50)).unwrap(),
            )
    };
    let run = || {
        SessionManager::new(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            RunConfig {
                jobs: 6,
                trace: TraceConfig::enabled(),
                ..RunConfig::default()
            },
        )
        .run_with_churn(&plan())
    };
    let x = run();
    let y = run();
    assert_eq!(export::jsonl(&x.outcome.trace), export::jsonl(&y.outcome.trace));
    assert_eq!(x.outcome.qos, y.outcome.qos);
    assert_eq!(x.counters, y.counters);
    assert_eq!(x.counters.churn_events, 4);
    // The mid-run departure really cut tenant a's job stream short.
    assert!(x.tenant("a").unwrap().qos.jobs() < 6);
    assert_eq!(x.tenant("b").unwrap().qos.jobs(), 6);
    assert_eq!(x.tenant("c").unwrap().qos.jobs(), 6);
}
