//! Differential property tests for the simulator's hot-path structures.
//!
//! PR 3 replaced the scan-based ready queue with a bitmap-indexed one and
//! the `BinaryHeap` event queue with a slab-backed heap. Both rewrites
//! must be *behaviorally invisible*: the simulator's determinism contract
//! (byte-identical seeded traces) rides on these structures agreeing with
//! their obviously-correct predecessors on every operation interleaving.
//!
//! Each test drives the production structure and an in-test reference
//! implementation — deliberately naive transcriptions of the pre-rewrite
//! code — through the same randomly generated operation sequence and
//! asserts every observable output matches, then drains both to compare
//! the final contents.

use std::collections::VecDeque;

use proptest::prelude::*;
use rtseed_model::{Priority, Time};
use rtseed_sim::{EventQueue, FifoReadyQueue};

/// The pre-PR ready queue: 99 FIFO levels picked by linear scan from the
/// top. No bitmap, no len cache — every answer is recomputed from the
/// levels themselves, so it cannot suffer a stale-index bug.
struct ScanReadyQueue<T> {
    levels: Vec<VecDeque<T>>,
}

impl<T: PartialEq> ScanReadyQueue<T> {
    fn new() -> ScanReadyQueue<T> {
        ScanReadyQueue {
            levels: (0..99).map(|_| VecDeque::new()).collect(),
        }
    }

    fn slot(prio: Priority) -> usize {
        (prio.level() - 1) as usize
    }

    fn enqueue(&mut self, prio: Priority, value: T) {
        self.levels[Self::slot(prio)].push_back(value);
    }

    fn enqueue_front(&mut self, prio: Priority, value: T) {
        self.levels[Self::slot(prio)].push_front(value);
    }

    fn dequeue_highest(&mut self) -> Option<(Priority, T)> {
        let slot = (0..99).rev().find(|&s| !self.levels[s].is_empty())?;
        let v = self.levels[slot].pop_front().expect("non-empty");
        Some((Priority::new((slot + 1) as u8).expect("in range"), v))
    }

    fn peek_highest_priority(&self) -> Option<Priority> {
        (0..99)
            .rev()
            .find(|&s| !self.levels[s].is_empty())
            .map(|slot| Priority::new((slot + 1) as u8).expect("in range"))
    }

    fn rotate(&mut self, prio: Priority) -> bool {
        let q = &mut self.levels[Self::slot(prio)];
        if q.len() < 2 {
            return false;
        }
        let head = q.pop_front().expect("non-empty");
        q.push_back(head);
        true
    }

    fn remove(&mut self, prio: Priority, value: &T) -> bool {
        let q = &mut self.levels[Self::slot(prio)];
        match q.iter().position(|v| v == value) {
            Some(pos) => {
                q.remove(pos);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.levels.iter().map(|q| q.len()).sum()
    }

    fn len_at(&self, prio: Priority) -> usize {
        self.levels[Self::slot(prio)].len()
    }
}

/// The pre-PR event queue, reduced to its contract: pending events in a
/// plain vector, pop returns the minimum under the `(time, insertion
/// sequence)` total order by linear scan.
struct ScanEventQueue<T> {
    pending: Vec<(Time, u64, T)>,
    seq: u64,
}

impl<T> ScanEventQueue<T> {
    fn new() -> ScanEventQueue<T> {
        ScanEventQueue {
            pending: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, at: Time, payload: T) {
        self.pending.push((at, self.seq, payload));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, T)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))?
            .0;
        let (at, _, payload) = self.pending.remove(best);
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<Time> {
        self.pending.iter().map(|&(at, seq, _)| (at, seq)).min().map(|(at, _)| at)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

fn prio(raw: u8) -> Priority {
    Priority::new(raw % 99 + 1).expect("in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitmap ready queue and the scan ready queue agree on every
    /// observable of every operation, over arbitrary interleavings of all
    /// six operations, and end up with identical contents.
    #[test]
    fn ready_queue_matches_scan_reference(
        ops in prop::collection::vec((0u8..6, any::<u8>(), any::<u8>()), 0..300),
    ) {
        let mut fast: FifoReadyQueue<u8> = FifoReadyQueue::new();
        let mut slow: ScanReadyQueue<u8> = ScanReadyQueue::new();
        for &(op, a, b) in &ops {
            match op {
                0 => {
                    fast.enqueue(prio(a), b);
                    slow.enqueue(prio(a), b);
                }
                1 => {
                    fast.enqueue_front(prio(a), b);
                    slow.enqueue_front(prio(a), b);
                }
                2 => prop_assert_eq!(fast.dequeue_highest(), slow.dequeue_highest()),
                3 => prop_assert_eq!(fast.rotate(prio(a)), slow.rotate(prio(a))),
                4 => prop_assert_eq!(fast.remove(prio(a), &b), slow.remove(prio(a), &b)),
                _ => prop_assert_eq!(fast.peek_highest_priority(), slow.peek_highest_priority()),
            }
            prop_assert_eq!(fast.len(), slow.len());
            prop_assert_eq!(fast.is_empty(), slow.len() == 0);
            prop_assert_eq!(fast.peek_highest_priority(), slow.peek_highest_priority());
            // Spot-check per-level counts at the levels this op touched.
            prop_assert_eq!(fast.len_at(prio(a)), slow.len_at(prio(a)));
        }
        // Drain both completely: contents and order must be identical.
        loop {
            let (f, s) = (fast.dequeue_highest(), slow.dequeue_highest());
            prop_assert_eq!(f, s);
            if f.is_none() {
                break;
            }
        }
    }

    /// The slab-heap event queue pops exactly the `(time, FIFO)` order of
    /// the linear-scan reference over arbitrary push/pop interleavings.
    /// Timestamps are drawn dense (16 distinct values) so equal-time
    /// tie-breaking — the bug class a heap rewrite is most likely to get
    /// wrong — is exercised constantly.
    #[test]
    fn event_queue_matches_scan_reference(
        ops in prop::collection::vec((0u8..3, any::<u8>()), 0..300),
    ) {
        let mut fast: EventQueue<u32> = EventQueue::new();
        let mut slow: ScanEventQueue<u32> = ScanEventQueue::new();
        let mut next_payload = 0u32;
        for &(op, a) in &ops {
            if op < 2 {
                // Push-biased (2:1) so the queues actually fill up.
                let at = Time::from_nanos((a % 16) as u64);
                fast.push(at, next_payload);
                slow.push(at, next_payload);
                next_payload += 1;
            } else {
                prop_assert_eq!(fast.pop(), slow.pop());
            }
            prop_assert_eq!(fast.len(), slow.len());
            prop_assert_eq!(fast.is_empty(), slow.len() == 0);
            prop_assert_eq!(fast.peek_time(), slow.peek_time());
        }
        loop {
            let (f, s) = (fast.pop(), slow.pop());
            prop_assert_eq!(f, s);
            if f.is_none() {
                break;
            }
        }
    }

    /// Steady-state slab recycling never disturbs ordering: after `clear`,
    /// the insertion counter keeps running and FIFO order still spans the
    /// clear (the documented contract).
    #[test]
    fn event_queue_order_survives_clear_and_churn(
        before in prop::collection::vec(any::<u8>(), 0..40),
        after in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut reference: ScanEventQueue<u32> = ScanEventQueue::new();
        for (i, &a) in before.iter().enumerate() {
            q.push(Time::from_nanos((a % 8) as u64), i as u32);
        }
        q.clear();
        prop_assert!(q.is_empty());
        for (i, &a) in after.iter().enumerate() {
            let at = Time::from_nanos((a % 8) as u64);
            q.push(at, i as u32);
            reference.push(at, i as u32);
        }
        loop {
            let (f, s) = (q.pop(), reference.pop());
            prop_assert_eq!(f, s);
            if f.is_none() {
                break;
            }
        }
    }
}
