//! Chaos and graceful-degradation property tests for the serving layer.
//!
//! Two families:
//!
//! * **Seeded chaos scenarios** (`rtseed_sim::chaos_plan` replayed through
//!   `rtseed_bench::chaos`): churn × WCET fault storms × submission
//!   bursts, asserting the three graceful-degradation invariants —
//!   compliant tenants never miss a mandatory deadline, shed QoS never
//!   goes below the SLA floor, every submission reaches a terminal
//!   state — plus byte-identical same-seed replay.
//! * **Restore hysteresis**: after every interferer departs, a shed
//!   survivor's optional deadline is restored to its full requested QoS,
//!   never before the hysteresis window elapses, and never below its
//!   floor on the way down.

use proptest::prelude::*;
use rtseed::obs::{TraceConfig, TraceEvent};
use rtseed::serve::{GracefulConfig, SessionManager};
use rtseed::{AssignmentPolicy, RunConfig};
use rtseed_analysis::PartitionHeuristic;
use rtseed_bench::chaos::{check_invariants, run_chaos};
use rtseed_model::{QosFloor, Span, TaskSpec, Time, Topology};
use rtseed_sim::{ChaosConfig, ChurnPlan};

/// The seeds CI gates on: small, fast, and exercising every mechanism
/// (sheds, restores, storms, expiry, eviction) across the set.
#[test]
fn chaos_fixed_seeds_are_green_and_deterministic() {
    let cfg = ChaosConfig::quick();
    for seed in 0..4 {
        let a = run_chaos(&cfg, seed, 8);
        let violations = check_invariants(&a);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let b = run_chaos(&cfg, seed, 8);
        assert_eq!(
            a.trace_jsonl, b.trace_jsonl,
            "seed {seed}: replay produced different trace bytes"
        );
        assert_eq!(a.out.counters, b.out.counters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The graceful-degradation invariants hold for *any* chaos seed, and
    /// every scenario replays byte-identically.
    #[test]
    fn chaos_invariants_hold_for_any_seed(seed in 0u64..256) {
        let cfg = ChaosConfig::quick();
        let a = run_chaos(&cfg, seed, 8);
        let violations = check_invariants(&a);
        prop_assert!(violations.is_empty(), "{violations:?}");
        let b = run_chaos(&cfg, seed, 8);
        prop_assert_eq!(&a.trace_jsonl, &b.trace_jsonl);
    }
}

fn rt_task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
    TaskSpec::builder(name)
        .period(Span::from_millis(period_ms))
        .mandatory(Span::from_millis(m_ms))
        .windup(Span::from_millis(w_ms))
        .optional_parts(2, Span::from_millis(8))
        .build()
        .expect("demands stay far below the period")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shed → restore round trip: a survivor admitted alone gets its
    /// analysis-maximal optional deadline `D − w`. Interferers may shed
    /// it (never below its floor); once they all depart, the survivor is
    /// restored to the full `D − w` — and with a hysteresis window
    /// configured, never before the window elapses.
    #[test]
    fn restores_converge_to_requested_qos_after_departures(
        period_ms in prop_oneof![Just(40u64), Just(50u64), Just(80u64), Just(100u64)],
        m_ms in 3u64..8,
        w_ms in 2u64..6,
        floor_frac in 0.3f64..0.9,
        interferers in 4usize..8,
        h_ms in prop_oneof![Just(0u64), Just(25u64), Just(75u64)],
    ) {
        let depart_at = Time::from_nanos(300_000_000);
        let hysteresis = Span::from_millis(h_ms);

        let mut plan = ChurnPlan::new().submit(
            Time::ZERO,
            "s",
            vec![rt_task("s/0", period_ms, m_ms, w_ms)],
            QosFloor::fraction(floor_frac),
            Span::from_millis(200),
        );
        for k in 0..interferers {
            plan = plan.submit(
                Time::from_nanos(10_000_000),
                format!("i{k}"),
                vec![
                    rt_task(&format!("i{k}/0"), 40, 6, 4),
                    rt_task(&format!("i{k}/1"), 50, 6, 4),
                ],
                QosFloor::none(),
                Span::from_millis(200),
            );
        }
        for k in 0..interferers {
            plan = plan.depart(depart_at, format!("i{k}"));
        }

        let run = RunConfig {
            jobs: 12,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        };
        let graceful = GracefulConfig {
            restore_hysteresis: hysteresis,
            ..GracefulConfig::default()
        };
        let out = SessionManager::with_graceful(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            run,
            graceful,
        )
        .run_with_churn(&plan);

        let survivor = out.tenant("s").expect("survivor was submitted");
        prop_assert_eq!(
            survivor.qos.deadline_misses(), 0,
            "survivor missed mandatory deadlines"
        );
        let task = survivor.tasks[0];

        // Admitted first on an empty machine, the survivor's granted OD
        // is the lone-task analysis maximum D − w; departures must bring
        // it back there.
        let requested = Span::from_millis(period_ms - w_ms);

        let mut last: Option<(Time, Span, bool)> = None; // (at, od, is_restore)
        for (at, ev) in out.outcome.trace.events() {
            match ev {
                TraceEvent::QosShed { task: t, od, floor, .. } if *t == task => {
                    prop_assert!(od >= floor, "shed below floor at {at}");
                    last = Some((*at, *od, false));
                }
                TraceEvent::QosRestored { task: t, od, .. } if *t == task => {
                    prop_assert!(
                        *at >= depart_at + hysteresis,
                        "restore at {at} deployed inside the hysteresis window"
                    );
                    last = Some((*at, *od, true));
                }
                _ => {}
            }
        }
        // If the ladder ever shed the survivor, the departures must have
        // restored it all the way back to its requested QoS.
        if let Some((at, od, is_restore)) = last {
            prop_assert!(is_restore, "last QoS change at {at} was a shed");
            prop_assert_eq!(od, requested, "restored OD short of requested");
        }
    }
}
