//! End-to-end integration of the trading substrate with the middleware:
//! the paper's motivating application (§II-A) running on both backends.

use std::sync::Arc;

use rtseed::config::SystemConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed::executor::RunConfig;
use rtseed::runtime::NativeExecutor;
use rtseed::termination::TerminationMode;
use rtseed_model::{Span, TaskSet, TaskSpec, Topology};
use rtseed_trading::execution::{ExecutionConfig, PaperVenue};
use rtseed_trading::imprecise::ImpreciseTrader;
use rtseed_trading::market::{PriceProcess, SyntheticFeed};
use rtseed_trading::strategy::{
    BollingerReversion, FundamentalBias, MacdMomentum, RsiContrarian, Signal, SignalAggregator,
};

fn trader(seed: u64, quorum: usize) -> Arc<ImpreciseTrader> {
    Arc::new(ImpreciseTrader::new(
        Box::new(SyntheticFeed::eur_usd(seed)),
        vec![
            Box::new(BollingerReversion::standard()),
            Box::new(MacdMomentum::new(0.00002)),
            Box::new(RsiContrarian::standard()),
        ],
        SignalAggregator::new(quorum),
        PaperVenue::new(ExecutionConfig::default()),
        1.0,
    ))
}

#[test]
fn synchronous_baseline_decides_every_cycle() {
    let t = trader(1, 1);
    let mut decisions = 0;
    for _ in 0..300 {
        assert!(t.run_cycle_synchronous().is_some());
        decisions += 1;
    }
    assert_eq!(t.decisions().len(), decisions);
    // After warm-up, some non-wait decisions occur on a mean-reverting
    // market with contrarian strategies.
    let trades = t
        .decisions()
        .iter()
        .filter(|s| !matches!(s, Signal::Wait))
        .count();
    assert!(trades > 0, "no trades in 300 cycles");
    // Every trade produced exactly one fill.
    assert_eq!(t.venue_snapshot().fills().len(), trades);
}

#[test]
fn native_pipeline_full_qos_with_fast_analyses() {
    let t = trader(2, 1);
    let spec = TaskSpec::builder("bot")
        .period(Span::from_millis(30))
        .mandatory(Span::from_millis(1))
        .windup(Span::from_millis(1))
        .optional_parts(t.analyses(), Span::from_millis(10))
        .build()
        .unwrap();
    let cfg = SystemConfig::build(
        TaskSet::new(vec![spec]).unwrap(),
        Topology::uniprocessor(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap();
    let out = NativeExecutor::new(
        cfg,
        RunConfig {
            jobs: 8,
            termination: TerminationMode::PeriodicCheck {
                interval: Span::from_millis(1),
            },
            attempt_rt: false,
            ..RunConfig::default()
        },
    )
    .run(vec![t.task_body()])
    .expect("native run");
    assert_eq!(out.qos.jobs(), 8);
    assert_eq!(t.decisions().len(), 8);
    let (completed, terminated, discarded) = out.qos.outcome_totals();
    assert_eq!(completed + terminated + discarded, 3 * 8);
    assert_eq!(completed, 3 * 8, "fast analyses must all complete");
}

#[test]
fn native_pipeline_terminations_degrade_to_waits_not_errors() {
    // A deliberately slow fundamental analysis that never finishes in its
    // window: it must be terminated, abstain, and the aggregate decision
    // must still be produced every cycle.
    let slow_trader = Arc::new(ImpreciseTrader::new(
        Box::new(SyntheticFeed::eur_usd(3)),
        vec![
            Box::new(BollingerReversion::standard()),
            Box::new(FundamentalBias::new(0.5)), // never gets releases → None
        ],
        SignalAggregator::new(2),
        PaperVenue::new(ExecutionConfig::default()),
        1.0,
    ));
    let spec = TaskSpec::builder("slow-bot")
        .period(Span::from_millis(30))
        .mandatory(Span::from_millis(1))
        .windup(Span::from_millis(1))
        .optional_parts(2, Span::from_millis(10))
        .build()
        .unwrap();
    let cfg = SystemConfig::build(
        TaskSet::new(vec![spec]).unwrap(),
        Topology::uniprocessor(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap();
    let out = NativeExecutor::new(
        cfg,
        RunConfig {
            jobs: 5,
            termination: TerminationMode::PeriodicCheck {
                interval: Span::from_millis(1),
            },
            attempt_rt: false,
            ..RunConfig::default()
        },
    )
    .run(vec![slow_trader.task_body()])
    .expect("native run");
    assert_eq!(out.qos.jobs(), 5);
    // Quorum 2 with one abstaining analysis ⇒ every decision is Wait.
    assert!(slow_trader
        .decisions()
        .iter()
        .all(|s| matches!(s, Signal::Wait)));
}

#[test]
fn deterministic_feeds_make_deterministic_decisions() {
    let a = trader(9, 1);
    let b = trader(9, 1);
    for _ in 0..200 {
        a.run_cycle_synchronous();
        b.run_cycle_synchronous();
    }
    assert_eq!(a.decisions(), b.decisions());
    assert_eq!(
        a.venue_snapshot().position().realized_pnl,
        b.venue_snapshot().position().realized_pnl
    );
}

#[test]
fn trending_market_trades_in_trend_direction_with_macd() {
    // A strongly trending market: MACD momentum alone should go long.
    let trending = SyntheticFeed::new(
        4,
        PriceProcess::GeometricBrownian {
            mu: 0.002,
            sigma: 0.0001,
        },
        1.0,
        0.00005,
        Span::from_secs(1),
        None,
    );
    let t = Arc::new(ImpreciseTrader::new(
        Box::new(trending),
        vec![Box::new(MacdMomentum::new(0.0))],
        SignalAggregator::new(1),
        PaperVenue::new(ExecutionConfig::default()),
        1.0,
    ));
    for _ in 0..120 {
        t.run_cycle_synchronous();
    }
    let bids = t.decisions().iter().filter(|s| **s == Signal::Bid).count();
    let asks = t.decisions().iter().filter(|s| **s == Signal::Ask).count();
    assert!(bids > asks * 3, "uptrend: {bids} bids vs {asks} asks");
    // Long position in an uptrend: positive equity.
    assert!(t.venue_snapshot().equity() > 0.0);
}
