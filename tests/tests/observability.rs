//! Integration tests for the unified executor API and the observability
//! subsystem: golden-trace determinism, export/report agreement (the
//! acceptance criterion), disabled-recorder parity, and the deprecated
//! compatibility aliases.

use rtseed::obs::export;
use rtseed::prelude::*;

/// The paper's always-overrunning workload, small enough for tests: every
/// optional part is terminated at OD, so all four overheads get samples.
fn overrun_config(np: usize) -> SystemConfig {
    let task = TaskSpec::builder("τ1")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_secs(1))
        .build()
        .unwrap();
    SystemConfig::build(
        TaskSet::new(vec![task]).unwrap(),
        Topology::xeon_phi_3120a(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap()
}

fn traced_run(seed: u64) -> RunConfig {
    RunConfig::builder()
        .jobs(10)
        .seed(seed)
        .trace(TraceConfig::enabled())
        .build()
        .unwrap()
}

/// Golden-trace equivalence across hot-path rewrites: the Xeon Phi 3120A
/// preset workload's JSONL export must be byte-identical to the checked-in
/// golden file, which was generated *before* the O(1) ready-queue /
/// event-queue rewrite. Any change to a scheduling decision — a different
/// dispatch order, a shifted tie-break, a dropped event — shows up here as
/// a byte diff. Regenerate deliberately with `RTSEED_REGEN_GOLDEN=1`.
#[test]
fn golden_trace_matches_checked_in_file() {
    let out = SimExecutor::new(overrun_config(8), traced_run(42)).run();
    let jsonl = export::jsonl(&out.trace);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/sim_trace_phi_np8.jsonl");
    if std::env::var_os("RTSEED_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden trace");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with RTSEED_REGEN_GOLDEN=1");
    if jsonl != golden {
        let diverged = jsonl
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first divergence at line {}:\n  got:    {}\n  golden: {}",
                    i + 1,
                    jsonl.lines().nth(i).unwrap_or(""),
                    golden.lines().nth(i).unwrap_or(""),
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, golden {}",
                    jsonl.lines().count(),
                    golden.lines().count()
                )
            });
        panic!(
            "trace diverged from golden file — a scheduling decision changed.\n{diverged}\n\
             If the change is intentional, regenerate the golden file with\n\
             `RTSEED_REGEN_GOLDEN=1 cargo test -p integration-tests --test observability`\n\
             and commit the diff (see tests/golden/README.md)."
        );
    }
}

#[test]
fn golden_trace_same_seed_byte_identical_exports() {
    let a = SimExecutor::new(overrun_config(8), traced_run(42)).run();
    let b = SimExecutor::new(overrun_config(8), traced_run(42)).run();
    assert!(!a.trace.is_empty());
    assert_eq!(export::jsonl(&a.trace), export::jsonl(&b.trace));
    assert_eq!(
        export::chrome_trace(&a.trace, &a.metrics),
        export::chrome_trace(&b.trace, &b.metrics)
    );
}

#[test]
fn different_seed_changes_the_stream() {
    let a = SimExecutor::new(
        overrun_config(8),
        RunConfig::builder()
            .jobs(10)
            .seed(1)
            .load(BackgroundLoad::CpuMemoryLoad)
            .trace(TraceConfig::enabled())
            .build()
            .unwrap(),
    )
    .run();
    let b = SimExecutor::new(
        overrun_config(8),
        RunConfig::builder()
            .jobs(10)
            .seed(2)
            .load(BackgroundLoad::CpuMemoryLoad)
            .trace(TraceConfig::enabled())
            .build()
            .unwrap(),
    )
    .run();
    assert_ne!(export::jsonl(&a.trace), export::jsonl(&b.trace));
}

/// The acceptance criterion: the Δm/Δb/Δs/Δe histogram summaries embedded
/// in the Chrome export match the `OverheadReport` values for the same
/// seed.
#[test]
fn chrome_export_histograms_match_overhead_report() {
    let out = SimExecutor::new(overrun_config(8), traced_run(7)).run();
    let json = export::chrome_trace(&out.trace, &out.metrics);
    for kind in OverheadKind::ALL {
        let count = out.overheads.count(kind) as u64;
        assert!(count > 0, "{} must be sampled", kind.symbol());
        let expected = format!(
            "\"{}\":{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}",
            kind.symbol(),
            count,
            out.overheads.mean(kind).as_nanos(),
            out.overheads.min(kind).as_nanos(),
            out.overheads.max(kind).as_nanos(),
        );
        assert!(json.contains(&expected), "missing {expected} in {json}");
        // The registry histogram agrees sample for sample.
        let h = out.metrics.overhead(kind);
        assert_eq!(h.count(), count);
        assert_eq!(h.mean_span(), out.overheads.mean(kind));
    }
}

/// Disabling the recorder must not change what is measured: same seed,
/// recorder on vs off, identical overheads and QoS.
#[test]
fn disabled_recorder_does_not_change_reported_overheads() {
    let traced = SimExecutor::new(overrun_config(8), traced_run(11)).run();
    let untraced = SimExecutor::new(
        overrun_config(8),
        RunConfig::builder().jobs(10).seed(11).build().unwrap(),
    )
    .run();
    assert!(untraced.trace.is_empty());
    assert!(!traced.trace.is_empty());
    for kind in OverheadKind::ALL {
        assert_eq!(
            traced.overheads.samples(kind),
            untraced.overheads.samples(kind),
            "{} must not depend on tracing",
            kind.symbol()
        );
    }
    assert_eq!(
        traced.qos.aggregate_ratio(),
        untraced.qos.aggregate_ratio()
    );
    assert_eq!(traced.metrics, untraced.metrics);
}

#[test]
fn bounded_ring_drops_oldest_and_counts() {
    let run = RunConfig::builder()
        .jobs(10)
        .trace(TraceConfig::bounded(16))
        .build()
        .unwrap();
    let out = SimExecutor::new(overrun_config(8), run).run();
    assert_eq!(out.trace.len(), 16);
    assert!(out.trace.dropped() > 0);
}

#[test]
fn executor_trait_is_backend_agnostic() {
    let system = overrun_config(4);
    let run = traced_run(3);
    let mut executors: Vec<Box<dyn Executor>> = vec![
        Box::new(SimExecutor::new(system.clone(), run.clone())),
        Box::new(GlobalExecutor::from_config(&system, run.clone())),
        Box::new(NativeExecutor::new(
            {
                // A fast native variant of the same shape (milliseconds,
                // not seconds, so the test stays quick).
                let t = TaskSpec::builder("native")
                    .period(Span::from_millis(50))
                    .mandatory(Span::from_millis(1))
                    .windup(Span::from_millis(1))
                    .optional_parts(2, Span::from_millis(5))
                    .build()
                    .unwrap();
                SystemConfig::build(
                    TaskSet::new(vec![t]).unwrap(),
                    Topology::uniprocessor(),
                    AssignmentPolicy::OneByOne,
                )
                .unwrap()
            },
            RunConfig {
                jobs: 10,
                attempt_rt: false,
                trace: TraceConfig::enabled(),
                ..RunConfig::default()
            },
        )),
    ];
    let names: Vec<&str> = executors.iter().map(|e| e.backend().name()).collect();
    assert_eq!(names, ["sim", "global", "native"]);
    for ex in &mut executors {
        let out = ex.execute().expect("run");
        assert_eq!(out.qos.jobs(), 10, "{} backend", ex.backend().name());
        assert!(!out.trace.is_empty(), "{} backend", ex.backend().name());
        // Exports work off every backend's outcome.
        let json = export::chrome_trace(&out.trace, &out.metrics);
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}

#[test]
fn run_config_validation_is_typed() {
    let err = RunConfig::builder()
        .rt_exec_fraction(0.0)
        .build()
        .unwrap_err();
    assert!(matches!(err, RunConfigError::ExecFraction { .. }));
    let err = RunConfig::builder()
        .trace(TraceConfig::bounded(0))
        .build()
        .unwrap_err();
    assert!(matches!(err, RunConfigError::ZeroTraceCapacity));
    // Executor::execute surfaces the same error as ExecError::Config.
    let mut bad = SimExecutor::new(
        overrun_config(4),
        RunConfig {
            rt_exec_fraction: -1.0,
            ..RunConfig::default()
        },
    );
    assert!(matches!(bad.execute(), Err(ExecError::Config(_))));
}
