//! Acceptance tests for the fault-injection + overload-resilience layer:
//! seeded overload scenarios with and without the supervisor, replay
//! determinism of a full chaos plan, and a table-driven Table I
//! comparison of the termination mechanisms under a fault plan.

use rtseed::config::SystemConfig;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::{Outcome, RunConfig};
use rtseed::policy::AssignmentPolicy;
use rtseed::termination::TerminationMode;
use rtseed::SupervisorConfig;
use rtseed_model::{Span, TaskSet, TaskSpec, Topology};
use rtseed_sim::{
    CpuStall, FaultPlan, FaultTarget, JobWindow, RandomOverruns, TimerFault,
    TimerFaultSpec, WcetFault,
};

/// The paper's evaluation task: T = 1 s, m = w = 250 ms, `np` optional
/// parts of 1 s each (they always overrun and are terminated at OD).
fn paper_config(np: usize) -> SystemConfig {
    let t = TaskSpec::builder("trader")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(np, Span::from_secs(1))
        .build()
        .unwrap();
    SystemConfig::build(
        TaskSet::new(vec![t]).unwrap(),
        Topology::xeon_phi_3120a(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap()
}

fn run(np: usize, run_cfg: RunConfig) -> Outcome {
    SimExecutor::new(paper_config(np), run_cfg).run()
}

/// A two-job overload episode: 5× the declared mandatory WCET on jobs 1
/// and 2 of 8 (0.75 × 250 ms × 5 = 937.5 ms of demand — past the optional
/// deadline, leaving no room for the wind-up part).
fn overload_plan() -> FaultPlan {
    FaultPlan::new(7).with_wcet_fault(WcetFault {
        task: None,
        jobs: JobWindow { from: 1, until: 3 },
        target: FaultTarget::Mandatory,
        factor: 5.0,
    })
}

#[test]
fn acceptance_overload_without_supervisor_misses_deadlines() {
    let out = run(
        4,
        RunConfig {
            jobs: 8,
            fault_plan: overload_plan(),
            ..Default::default()
        },
    );
    assert!(
        out.qos.deadline_misses() > 0,
        "unsupervised overload must miss mandatory/wind-up deadlines, got {}",
        out.qos
    );
    // The injection is recorded, but nothing was supervised away.
    assert_eq!(out.faults.wcet_faults, 2, "{}", out.faults);
    assert_eq!(out.faults.budget_cuts, 0);
    assert_eq!(out.faults.degraded_entries, 0);
}

#[test]
fn acceptance_degraded_mode_saves_deadlines_and_recovers() {
    let out = run(
        4,
        RunConfig {
            jobs: 8,
            fault_plan: overload_plan(),
            supervisor: SupervisorConfig::armed(),
            ..Default::default()
        },
    );
    // Degraded mode (mandatory + wind-up only) keeps every deadline.
    assert_eq!(
        out.qos.deadline_misses(),
        0,
        "supervised overload must not miss: {}",
        out.qos
    );
    // The report records the degradation episode and the recovery.
    let f = &out.faults;
    assert_eq!(f.wcet_faults, 2, "{f}");
    assert!(f.budget_cuts >= 2, "{f}");
    assert!(f.degraded_entries >= 1, "{f}");
    assert!(f.jobs_degraded >= 1, "{f}");
    assert!(f.degraded_dwell > Span::ZERO, "{f}");
    assert!(f.recovery_latency > Span::ZERO, "{f}");
    // Recovery happened: the run did not end degraded (dwell is bounded
    // by the episode, well under the full horizon).
    assert!(f.degraded_dwell < Span::from_secs(8), "{f}");
    // QoS knows which jobs ran without their optional parts.
    assert_eq!(out.qos.degraded_jobs(), f.jobs_degraded, "{}", out.qos);
}

/// The full chaos plan: random mandatory overruns, a delayed and a lost
/// timer, and a CPU stall — under an armed supervisor.
fn chaos_cfg(seed: u64) -> RunConfig {
    RunConfig {
        jobs: 10,
        collect_trace: true,
        fault_plan: FaultPlan::new(seed)
            .with_random_overruns(RandomOverruns {
                probability: 0.3,
                min_factor: 1.5,
                max_factor: 6.0,
                target: FaultTarget::Mandatory,
            })
            .with_timer_fault(TimerFaultSpec {
                task: None,
                jobs: JobWindow { from: 2, until: 3 },
                fault: TimerFault::Delay(Span::from_millis(20)),
            })
            .with_timer_fault(TimerFaultSpec {
                task: None,
                jobs: JobWindow { from: 5, until: 6 },
                fault: TimerFault::Lost,
            })
            .with_cpu_stall(CpuStall {
                hw: 1,
                at: rtseed_model::Time::ZERO + Span::from_millis(7300),
                duration: Span::from_millis(400),
            }),
        supervisor: SupervisorConfig::armed(),
        ..Default::default()
    }
}

#[test]
fn acceptance_same_fault_seed_replays_identical_trace() {
    let a = run(8, chaos_cfg(42));
    let b = run(8, chaos_cfg(42));
    assert_eq!(a.trace, b.trace, "same seed must replay bit-identically");
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.overheads, b.overheads);
    // The plan actually did something (this is not a vacuous replay).
    assert!(a.faults.wcet_faults > 0, "{}", a.faults);
    assert_eq!(a.faults.timer_faults, 2, "{}", a.faults);
    assert_eq!(a.faults.cpu_stalls, 1, "{}", a.faults);

    // A different seed perturbs the run (the random overruns move).
    let c = run(8, chaos_cfg(43));
    assert_ne!(a.trace, c.trace, "different seed must diverge");
}

/// Regression: the global executor used to silently drop FaultPlan CPU
/// stalls (its event loop never scheduled them), so "faulted" global runs
/// were actually clean. Stalls now flow through the shared protocol
/// engine on every backend: the same plan must register on both, and on a
/// uniprocessor — where global dispatch cannot migrate around the stall —
/// it must starve the task into a deadline miss.
#[test]
fn acceptance_global_backend_models_cpu_stalls() {
    use rtseed::exec_global::GlobalExecutor;
    use rtseed::obs::TraceEvent;

    let t = TaskSpec::builder("t")
        .period(Span::from_millis(100))
        .mandatory(Span::from_millis(10))
        .windup(Span::from_millis(10))
        .build()
        .unwrap();
    let cfg = SystemConfig::build(
        TaskSet::new(vec![t]).unwrap(),
        Topology::new(1, 1).unwrap(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap();
    let run_cfg = || RunConfig {
        jobs: 3,
        collect_trace: true,
        fault_plan: FaultPlan::new(0).with_cpu_stall(CpuStall {
            hw: 0,
            at: rtseed_model::Time::ZERO,
            duration: Span::from_millis(95),
        }),
        ..Default::default()
    };
    let global = GlobalExecutor::from_config(&cfg, run_cfg()).run();
    let sim = SimExecutor::new(cfg.clone(), run_cfg()).run();
    for (name, out) in [("global", &global), ("sim", &sim)] {
        assert_eq!(out.faults.cpu_stalls, 1, "{name}: {}", out.faults);
        assert_eq!(
            out.trace
                .count(|e| matches!(e, TraceEvent::CpuStallStarted { .. })),
            1,
            "{name}"
        );
        assert_eq!(
            out.qos.deadline_misses(),
            1,
            "{name}: job 0 starves through the 95 ms stall: {}",
            out.qos
        );
    }
}

#[test]
fn table1_termination_modes_miss_counts_under_fault_plan() {
    // Every job's optional-deadline timer fires 30 ms late — within the
    // wind-up slack for an any-time mechanism. Table I's consequences,
    // measured as mandatory/wind-up deadline misses over 4 jobs:
    //
    // * sigsetjmp/siglongjmp terminates at the (late) timer and re-arms
    //   it every job: no misses;
    // * periodic check adds checkpoint lag on top of the delay — with a
    //   250 ms interval the next checkpoint after the (late) OD lands past
    //   the wind-up slack, so every job misses;
    // * try-catch terminates job 0 but never restores the signal mask, so
    //   jobs 1.. run their optional parts unchecked and miss.
    let plan = || {
        FaultPlan::new(3).with_timer_fault(TimerFaultSpec {
            task: None,
            jobs: JobWindow::ALL,
            fault: TimerFault::Delay(Span::from_millis(30)),
        })
    };
    let cases: [(TerminationMode, u64); 3] = [
        (TerminationMode::SigjmpTimer, 0),
        (
            TerminationMode::PeriodicCheck {
                interval: Span::from_millis(250),
            },
            4,
        ),
        (TerminationMode::UnwindCatch, 3),
    ];
    for (mode, expected_misses) in cases {
        let out = run(
            4,
            RunConfig {
                jobs: 4,
                termination: mode,
                fault_plan: plan(),
                ..Default::default()
            },
        );
        assert_eq!(
            out.qos.deadline_misses(),
            expected_misses,
            "{mode}: expected {expected_misses} misses, got {}",
            out.qos
        );
        // The injection itself is mode-independent.
        assert_eq!(out.faults.timer_faults, 4, "{mode}: {}", out.faults);
    }
}
