//! Differential tests for tenant-scale admission: the sharded,
//! incremental admission engine must reach **bit-identical** decisions to
//! the monolithic full-RTA oracle.
//!
//! Three layers of evidence:
//!
//! * **Controller-level proptest**: arbitrary admit/evict interleavings
//!   with random task shapes and floors, replayed in lockstep through the
//!   full-RTA controller, the incremental controller and the sharded
//!   wrapper — every per-step decision, every resident optional deadline
//!   and the exact utilization bits must agree.
//! * **Serving-level proptest**: seeded chaos scenarios (churn × fault
//!   storms × queued bursts × shedding ladder) replayed under the
//!   incremental sharded engine (any shard count, parallel rounds on or
//!   off) and under the full-RTA oracle — byte-identical JSONL traces and
//!   identical per-tenant outcomes.
//! * **Fixed scenarios** CI always runs: a shed → restore round trip with
//!   SLA floors (exercising bounded plans and eviction invalidation), and
//!   a fixed-seed sweep over engine configurations.

use proptest::prelude::*;
use rtseed::obs::{export, TraceConfig};
use rtseed::serve::{AdmissionConfig, GracefulConfig, SessionManager};
use rtseed::{AssignmentPolicy, RunConfig, ServeCounters};
use rtseed_analysis::{AdmissionController, PartitionHeuristic, ShardedAdmission};
use rtseed_bench::chaos::run_chaos_with_admission;
use rtseed_model::{QosFloor, Span, TaskSpec, Time, Topology};
use rtseed_sim::{ChaosConfig, ChurnPlan};

/// Zero the analysis-cost telemetry that legitimately differs between
/// engines (cache hit/miss counts, shard-placement bookkeeping). Every
/// *decision* counter must still match exactly.
fn sans_analysis(mut c: ServeCounters) -> ServeCounters {
    c.rta_cache_hits = 0;
    c.rta_cache_misses = 0;
    c.cross_shard_admissions = 0;
    c
}

fn task(name: &str, period_ms: u64, m_ms: u64, w_ms: u64) -> TaskSpec {
    TaskSpec::builder(name)
        .period(Span::from_millis(period_ms))
        .mandatory(Span::from_millis(m_ms))
        .windup(Span::from_millis(w_ms))
        .optional_parts(1, Span::from_millis(5))
        .build()
        .expect("demands stay below the period")
}

const PERIODS_MS: [u64; 5] = [20, 25, 40, 50, 100];

/// One step of a controller interleaving, decoded from proptest-chosen
/// integers so the same script drives all three engines.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,       // 0/1: admit 1/2 tasks; 2: evict oldest; 3: evict newest
    period_idx: u8, // into PERIODS_MS
    m_ms: u64,
    w_ms: u64,
    floored: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary submit/evict interleavings: the incremental controller
    /// and the sharded wrapper agree with the full-RTA oracle on every
    /// admit/reject decision, every granted and shed optional deadline,
    /// and the exact (bit-for-bit) utilization accumulator.
    #[test]
    fn controllers_agree_over_arbitrary_interleavings(
        ops in prop::collection::vec(
            (0u8..4, 0u8..5, 2u64..7, 1u64..5, any::<bool>()),
            1..28,
        ),
        shards in prop_oneof![Just(1u32), Just(2u32), Just(4u32), Just(8u32)],
    ) {
        let heuristic = PartitionHeuristic::WorstFitDecreasing;
        let mut full = AdmissionController::with_mode(8, heuristic, true);
        let mut inc = AdmissionController::with_mode(8, heuristic, false);
        let mut shd = ShardedAdmission::new(8, heuristic, shards, false);
        let mut admitted: Vec<Vec<rtseed_analysis::TaskKey>> = Vec::new();

        for (i, &(kind, period_idx, m_ms, w_ms, floored)) in ops.iter().enumerate() {
            let op = Op { kind, period_idx, m_ms, w_ms, floored };
            match op.kind {
                0 | 1 => {
                    let n = 1 + op.kind as usize;
                    let tasks: Vec<TaskSpec> = (0..n)
                        .map(|j| task(
                            &format!("t{i}/{j}"),
                            PERIODS_MS[op.period_idx as usize],
                            op.m_ms,
                            op.w_ms,
                        ))
                        .collect();
                    let floors = if op.floored {
                        vec![QosFloor::fraction(0.5); n]
                    } else {
                        Vec::new()
                    };
                    let a = full.try_admit_bounded(&tasks, &floors, &[]);
                    let b = inc.try_admit_bounded(&tasks, &floors, &[]);
                    let c = shd.try_admit_bounded(&tasks, &floors, &[]);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "op {}: full vs incremental", i);
                    prop_assert_eq!(a.is_ok(), c.is_ok(), "op {}: full vs sharded", i);
                    if let (Ok(a), Ok(b), Ok(c)) = (a, b, c) {
                        prop_assert_eq!(&a.tasks, &b.tasks, "op {}", i);
                        prop_assert_eq!(&a.tasks, &c.tasks, "op {}", i);
                        prop_assert_eq!(&a.od_updates, &b.od_updates, "op {}", i);
                        prop_assert_eq!(&a.od_updates, &c.od_updates, "op {}", i);
                        admitted.push(a.tasks.iter().map(|t| t.key).collect());
                    }
                }
                2 | 3 => {
                    if admitted.is_empty() {
                        continue;
                    }
                    let idx = if op.kind == 2 { 0 } else { admitted.len() - 1 };
                    let keys = admitted.remove(idx);
                    let a = full.evict(&keys);
                    let b = inc.evict(&keys);
                    let c = shd.evict(&keys);
                    prop_assert_eq!(&a, &b, "op {}: eviction updates diverge", i);
                    prop_assert_eq!(&a, &c, "op {}: eviction updates diverge", i);
                }
                _ => unreachable!(),
            }
            let mut ra = full.resident_ods();
            let mut rb = inc.resident_ods();
            let mut rc = shd.resident_ods();
            ra.sort();
            rb.sort();
            rc.sort();
            prop_assert_eq!(&ra, &rb, "op {}: resident ODs diverge", i);
            prop_assert_eq!(&ra, &rc, "op {}: resident ODs diverge", i);
            prop_assert_eq!(
                full.total_utilization().to_bits(),
                inc.total_utilization().to_bits(),
                "op {}: utilization bits diverge", i
            );
            prop_assert_eq!(
                full.total_utilization().to_bits(),
                shd.total_utilization().to_bits(),
                "op {}: utilization bits diverge", i
            );
        }
        // The oracle never caches; the incremental engines must have
        // actually exercised the cache on any admitting script.
        prop_assert_eq!(full.cache_stats().hits, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full serving-layer scenarios: any chaos seed, any shard count,
    /// parallel rounds on or off — the run is byte-identical to the
    /// monolithic full-RTA oracle's.
    #[test]
    fn serving_runs_match_the_full_rta_oracle(
        seed in 0u64..256,
        shards in prop_oneof![Just(1u32), Just(2u32), Just(8u32)],
        parallel in any::<bool>(),
    ) {
        let cfg = ChaosConfig::quick();
        let oracle = run_chaos_with_admission(&cfg, seed, 8, AdmissionConfig {
            shards: 1,
            parallel_rounds: false,
            full_rta: true,
        });
        let fast = run_chaos_with_admission(&cfg, seed, 8, AdmissionConfig {
            shards,
            parallel_rounds: parallel,
            full_rta: false,
        });
        prop_assert_eq!(&oracle.trace_jsonl, &fast.trace_jsonl);
        prop_assert_eq!(oracle.out.tenants.len(), fast.out.tenants.len());
        for (a, b) in oracle.out.tenants.iter().zip(&fast.out.tenants) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(&a.qos, &b.qos);
        }
        prop_assert_eq!(
            sans_analysis(oracle.out.counters),
            sans_analysis(fast.out.counters)
        );
    }
}

/// The fixed engine configurations CI always exercises, decoupled from
/// proptest's RNG: every (shards, parallel) point reproduces the oracle's
/// trace bytes on the gate seeds.
#[test]
fn fixed_seeds_are_oracle_identical_for_every_engine_config() {
    let cfg = ChaosConfig::quick();
    for seed in 0..3 {
        let oracle = run_chaos_with_admission(
            &cfg,
            seed,
            8,
            AdmissionConfig {
                shards: 1,
                parallel_rounds: false,
                full_rta: true,
            },
        );
        for &(shards, parallel) in &[(1u32, false), (4, false), (8, true)] {
            let fast = run_chaos_with_admission(
                &cfg,
                seed,
                8,
                AdmissionConfig {
                    shards,
                    parallel_rounds: parallel,
                    full_rta: false,
                },
            );
            assert_eq!(
                oracle.trace_jsonl, fast.trace_jsonl,
                "seed {seed}, shards {shards}, parallel {parallel}: trace bytes diverge"
            );
            assert_eq!(
                sans_analysis(oracle.out.counters),
                sans_analysis(fast.out.counters),
            );
        }
    }
}

/// A shed → restore round trip with SLA floors — the path that stresses
/// cache invalidation hardest (bounded ladder plans, floor re-anchoring,
/// eviction, hysteresis-deferred restores) — is byte-identical under the
/// incremental sharded engine.
#[test]
fn shed_restore_round_trip_is_oracle_identical() {
    let plan = || {
        let mut plan = ChurnPlan::new().submit(
            Time::ZERO,
            "survivor",
            vec![task("s/0", 50, 5, 3)],
            QosFloor::fraction(0.6),
            Span::from_millis(200),
        );
        for k in 0..6 {
            plan = plan.submit(
                Time::from_nanos(10_000_000),
                format!("i{k}"),
                vec![
                    task(&format!("i{k}/0"), 40, 6, 4),
                    task(&format!("i{k}/1"), 50, 6, 4),
                ],
                QosFloor::none(),
                Span::from_millis(200),
            );
        }
        for k in 0..6 {
            plan = plan.depart(Time::from_nanos(300_000_000), format!("i{k}"));
        }
        plan
    };
    let run = |admission: AdmissionConfig| {
        let run = RunConfig {
            jobs: 12,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        };
        let graceful = GracefulConfig {
            restore_hysteresis: Span::from_millis(50),
            admission,
            ..GracefulConfig::default()
        };
        SessionManager::with_graceful(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            run,
            graceful,
        )
        .run_with_churn(&plan())
    };
    let oracle = run(AdmissionConfig {
        shards: 1,
        parallel_rounds: false,
        full_rta: true,
    });
    let fast = run(AdmissionConfig {
        shards: 8,
        parallel_rounds: true,
        full_rta: false,
    });
    assert_eq!(
        export::jsonl(&oracle.outcome.trace),
        export::jsonl(&fast.outcome.trace)
    );
    assert_eq!(oracle.outcome.qos, fast.outcome.qos);
    assert_eq!(
        sans_analysis(oracle.counters),
        sans_analysis(fast.counters)
    );
    // The scenario actually shed and restored somebody, and the fast
    // engine actually reused cached bin analyses along the way.
    assert!(oracle.counters.qos_sheds > 0, "scenario never exercised the ladder");
    assert!(fast.counters.rta_cache_hits > 0, "cache never hit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched evictions (the depart-storm path): planning every touched
    /// bin independently — in *any* assembly order, as the parallel
    /// planner does — and committing once must match both the one-shot
    /// `evict` and the full-RTA oracle, bin for bin and bit for bit.
    #[test]
    fn eviction_storms_plan_commit_like_the_oracle(
        tenants in prop::collection::vec((0u8..5, 2u64..7, 1u64..5), 3..10),
        evict_mask in prop::collection::vec(any::<bool>(), 10),
        reverse_assembly in any::<bool>(),
    ) {
        let heuristic = PartitionHeuristic::WorstFitDecreasing;
        let mut full = AdmissionController::with_mode(8, heuristic, true);
        let mut inc = AdmissionController::with_mode(8, heuristic, false);
        let mut shd = ShardedAdmission::new(8, heuristic, 4, false);
        let mut keys_full = Vec::new();
        let mut keys_inc = Vec::new();
        let mut keys_shd = Vec::new();
        for (i, &(p_idx, m_ms, w_ms)) in tenants.iter().enumerate() {
            let tasks = vec![
                task(&format!("t{i}/0"), PERIODS_MS[p_idx as usize], m_ms, w_ms),
                task(&format!("t{i}/1"), PERIODS_MS[(p_idx as usize + 2) % 5], m_ms, w_ms),
            ];
            let (Ok(a), Ok(b), Ok(c)) = (
                full.try_admit(&tasks),
                inc.try_admit(&tasks),
                shd.try_admit(&tasks),
            ) else {
                continue;
            };
            keys_full.push(a.tasks.iter().map(|t| t.key).collect::<Vec<_>>());
            keys_inc.push(b.tasks.iter().map(|t| t.key).collect::<Vec<_>>());
            keys_shd.push(c.tasks.iter().map(|t| t.key).collect::<Vec<_>>());
        }
        // The storm: evict every masked tenant's keys in ONE batch.
        let storm = |all: &[Vec<rtseed_analysis::TaskKey>]| -> Vec<rtseed_analysis::TaskKey> {
            all.iter()
                .enumerate()
                .filter(|(i, _)| evict_mask[*i % evict_mask.len()])
                .flat_map(|(_, ks)| ks.iter().copied())
                .collect()
        };
        let (sf, si, ss) = (storm(&keys_full), storm(&keys_inc), storm(&keys_shd));
        // Oracle: the monolithic full-RTA controller's one-shot evict.
        let oracle_updates = full.evict(&sf);
        // Incremental: plan each touched bin independently, assemble in
        // an arbitrary order (parallel workers finish in any order),
        // commit once.
        let mut parts: Vec<(usize, Vec<Span>)> = inc
            .evict_touched_bins(&si)
            .into_iter()
            .map(|b| inc.plan_evict_bin(b, &si))
            .collect();
        if reverse_assembly {
            parts.reverse();
        }
        let plan = rtseed_analysis::EvictPlan::assemble(parts);
        let inc_updates = inc.commit_evict(&si, &plan);
        // Sharded wrapper: the sequential plan + commit split.
        let shd_plan = shd.plan_evict(&ss);
        let shd_updates = shd.commit_evict(&ss, &shd_plan);
        prop_assert_eq!(&oracle_updates, &inc_updates, "batched eviction diverges from oracle");
        prop_assert_eq!(&oracle_updates, &shd_updates, "sharded batched eviction diverges");
        let mut ra = full.resident_ods();
        let mut rb = inc.resident_ods();
        let mut rc = shd.resident_ods();
        ra.sort();
        rb.sort();
        rc.sort();
        prop_assert_eq!(&ra, &rb, "post-storm resident ODs diverge");
        prop_assert_eq!(&ra, &rc, "post-storm resident ODs diverge");
        prop_assert_eq!(
            full.total_utilization().to_bits(),
            inc.total_utilization().to_bits(),
            "post-storm utilization bits diverge"
        );
        prop_assert_eq!(
            full.total_utilization().to_bits(),
            shd.total_utilization().to_bits(),
            "post-storm utilization bits diverge"
        );
    }
}

/// A depart-heavy storm at the serving layer: many tenants leave at the
/// same scripted instant, so the churn loop coalesces them into one
/// batched eviction (planned in parallel). The run must stay
/// byte-identical to the full-RTA oracle's, and every departure must
/// land.
#[test]
fn depart_storm_is_batched_and_oracle_identical() {
    let storm = 8usize;
    let plan = || {
        let mut plan = ChurnPlan::new();
        for k in 0..storm {
            plan = plan.submit(
                Time::ZERO,
                format!("s{k}"),
                vec![
                    task(&format!("s{k}/0"), 40, 4, 2),
                    task(&format!("s{k}/1"), 50, 4, 2),
                ],
                QosFloor::none(),
                Span::from_millis(200),
            );
        }
        // One survivor that should see its QoS restored by the storm.
        plan = plan.submit(
            Time::ZERO,
            "survivor",
            vec![task("sv/0", 100, 5, 3)],
            QosFloor::none(),
            Span::from_millis(200),
        );
        for k in 0..storm {
            plan = plan.depart(Time::from_nanos(200_000_000), format!("s{k}"));
        }
        plan
    };
    let run = |admission: AdmissionConfig| {
        let run = RunConfig {
            jobs: 10,
            trace: TraceConfig::enabled(),
            ..RunConfig::default()
        };
        let graceful = GracefulConfig {
            admission,
            ..GracefulConfig::default()
        };
        SessionManager::with_graceful(
            Topology::quad_core_smt2(),
            PartitionHeuristic::WorstFitDecreasing,
            AssignmentPolicy::OneByOne,
            run,
            graceful,
        )
        .run_with_churn(&plan())
    };
    let oracle = run(AdmissionConfig {
        shards: 1,
        parallel_rounds: false,
        full_rta: true,
    });
    let fast = run(AdmissionConfig {
        shards: 8,
        parallel_rounds: true,
        full_rta: false,
    });
    assert_eq!(
        export::jsonl(&oracle.outcome.trace),
        export::jsonl(&fast.outcome.trace),
        "depart storm diverges from the oracle"
    );
    assert_eq!(sans_analysis(oracle.counters), sans_analysis(fast.counters));
    assert_eq!(
        oracle.counters.departures, storm as u64,
        "every storm departure must land"
    );
}
