//! Property-based integration tests: invariants that must hold for *any*
//! task set, topology, and policy — the analysis, the configuration layer,
//! and the simulator agree with each other.

use proptest::prelude::*;
use rtseed::config::SystemConfig;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed_analysis::rmwp::RmwpAnalysis;
use rtseed_analysis::taskgen::{generate, TaskGenConfig};
use rtseed_model::{Span, TaskSet, Topology};
use rtseed_sim::Calibration;

fn small_set(seed: u64, tasks: usize, util: f64) -> TaskSet {
    generate(
        &TaskGenConfig {
            tasks,
            total_utilization: util,
            period_min: Span::from_millis(10),
            period_max: Span::from_millis(500),
            optional_parts: (0, 4),
            ..TaskGenConfig::default()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RMWP analysis invariants: OD within (0, D]; the guaranteed window
    /// never exceeds OD; R^m ≤ OD.
    #[test]
    fn rmwp_analysis_invariants(seed in 0u64..500, tasks in 1usize..6) {
        let set = small_set(seed, tasks, 0.5);
        if let Ok(a) = RmwpAnalysis::analyze(&set) {
            for (id, spec) in set.iter() {
                let od = a.optional_deadline(id);
                prop_assert!(od <= spec.deadline());
                prop_assert!(od >= spec.mandatory(), "OD ≥ R^m ≥ m");
                prop_assert!(a.mandatory_response(id) <= od);
                prop_assert!(a.windup_response(id) >= spec.windup());
                prop_assert!(a.guaranteed_optional_window(id) <= od);
            }
        }
    }

    /// Optional parts never change the analysis (paper Theorems 1–2).
    #[test]
    fn optional_parts_never_change_analysis(seed in 0u64..200) {
        let set = small_set(seed, 3, 0.4);
        let stripped = TaskSet::new(
            set.iter()
                .map(|(_, t)| t.with_optional_parts(0, Span::ZERO))
                .collect(),
        ).unwrap();
        let a = RmwpAnalysis::analyze(&set);
        let b = RmwpAnalysis::analyze(&stripped);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                for id in set.ids() {
                    prop_assert_eq!(a.optional_deadline(id), b.optional_deadline(id));
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "schedulability diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Policy placements stay within the topology and wrap deterministically.
    #[test]
    fn placements_within_topology(
        cores in 1u32..64,
        smt in 1u32..5,
        np in 0usize..600,
        k in 1u32..6,
    ) {
        let topo = Topology::new(cores, smt).unwrap();
        for policy in [
            AssignmentPolicy::OneByOne,
            AssignmentPolicy::TwoByTwo,
            AssignmentPolicy::AllByAll,
            AssignmentPolicy::KByK(k),
        ] {
            let placed = policy.placements(&topo, np);
            prop_assert_eq!(placed.len(), np);
            for hw in &placed {
                prop_assert!(hw.index() < topo.hw_threads() as usize);
            }
            // Until capacity, placements are distinct.
            let cap = topo.hw_threads() as usize;
            let distinct: std::collections::HashSet<_> =
                placed.iter().take(cap).collect();
            prop_assert_eq!(distinct.len(), np.min(cap));
        }
    }

    /// Any admitted configuration runs without deadline misses when the
    /// overhead model is zeroed (pure schedulability, no calibration).
    #[test]
    fn admitted_sets_meet_deadlines_in_sim(seed in 0u64..200) {
        let set = small_set(seed, 3, 0.5);
        let topo = Topology::quad_core_smt2();
        if let Ok(cfg) = SystemConfig::build(set, topo, AssignmentPolicy::OneByOne) {
            let zero = Calibration {
                begin_mandatory_ns: 0,
                signal_ns: 0,
                switch_ns: 0,
                switch_per_part_ns: 0,
                switch_surge_ns: 0,
                switch_loaded_cpu_ns: 0,
                switch_loaded_mem_ns: 0,
                end_part_ns: 0,
                end_cross_core_ns: 0,
                jitter: 0.0,
                ..Calibration::default()
            };
            let out = SimExecutor::new(
                cfg,
                RunConfig {
                    jobs: 4,
                    calibration: zero,
                    rt_exec_fraction: 1.0,
                    ..Default::default()
                },
            )
            .run();
            prop_assert_eq!(out.qos.deadline_misses(), 0);
        }
    }

    /// The simulator's QoS accounting is conserved: achieved ≤ requested,
    /// outcome counts equal np × jobs.
    #[test]
    fn qos_accounting_conserved(seed in 0u64..60, np in 1usize..6) {
        let set = small_set(seed, 1, 0.3);
        let spec = set.task(rtseed_model::TaskId(0));
        if spec.windup().is_zero() {
            return Ok(()); // generated a pure LL task: nothing to check
        }
        let with_parts = TaskSet::new(vec![
            spec.with_optional_parts(np, spec.period())
        ]).unwrap();
        let topo = Topology::quad_core_smt2();
        if let Ok(cfg) = SystemConfig::build(with_parts, topo, AssignmentPolicy::AllByAll) {
            let jobs = 3u64;
            let out = SimExecutor::new(
                cfg,
                RunConfig { jobs, ..Default::default() },
            ).run();
            let (c, t, d) = out.qos.outcome_totals();
            prop_assert_eq!(c + t + d, np as u64 * jobs);
            prop_assert!(out.qos.achieved_total() <= out.qos.requested_total());
        }
    }
}

#[test]
fn determinism_across_identical_runs() {
    let set = small_set(7, 3, 0.5);
    let cfg = || {
        SystemConfig::build(
            set.clone(),
            Topology::quad_core_smt2(),
            AssignmentPolicy::TwoByTwo,
        )
        .unwrap()
    };
    let run = || {
        SimExecutor::new(
            cfg(),
            RunConfig {
                jobs: 5,
                seed: 99,
                collect_trace: true,
                ..Default::default()
            },
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.overheads, b.overheads);
}
