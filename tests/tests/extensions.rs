//! Integration tests for the extension modules: the practical imprecise
//! computation model (paper §VII future work), the G-RMWP global executor
//! (§IV-B ablation), the Fig. 3 profiles, and the risk-managed trading
//! pipeline.

use rtseed::config::SystemConfig;
use rtseed::exec_global::GlobalExecutor;
use rtseed::exec_sim::SimExecutor;
use rtseed::executor::RunConfig;
use rtseed::policy::AssignmentPolicy;
use rtseed::profile::{RemainingProfile, SchedulingMode};
use rtseed_analysis::practical::{PracticalAnalysis, PracticalTaskSet};
use rtseed_model::practical::{PracticalTaskSpec, Stage};
use rtseed_model::{Span, TaskId, TaskSet, TaskSpec, Topology};

fn two_stage(period_ms: u64, m_ms: u64, w_ms: u64) -> PracticalTaskSpec {
    PracticalTaskSpec::new(
        format!("t{period_ms}"),
        Span::from_millis(period_ms),
        vec![
            Stage::new(Span::from_millis(m_ms), vec![Span::from_millis(period_ms)]).unwrap(),
            Stage::new(Span::from_millis(w_ms), vec![]).unwrap(),
        ],
    )
    .unwrap()
}

#[test]
fn practical_model_round_trips_through_the_full_stack() {
    // A two-stage practical task converts to the extended model, builds a
    // SystemConfig whose OD matches the practical per-stage analysis, and
    // runs on the simulator without misses.
    let practical = two_stage(1000, 250, 250);
    let pset = PracticalTaskSet::new(vec![practical.clone()]).unwrap();
    let pa = PracticalAnalysis::analyze(&pset).unwrap();

    let extended = practical.to_extended().unwrap();
    let cfg = SystemConfig::build(
        TaskSet::new(vec![extended]).unwrap(),
        Topology::xeon_phi_3120a(),
        AssignmentPolicy::OneByOne,
    )
    .unwrap();
    assert_eq!(
        cfg.optional_deadline(TaskId(0)),
        pa.optional_deadline(TaskId(0), 0),
        "stage-0 OD must agree between the two analyses"
    );
    let out = SimExecutor::new(
        cfg,
        RunConfig {
            jobs: 5,
            ..Default::default()
        },
    )
    .run();
    assert_eq!(out.qos.deadline_misses(), 0);
}

#[test]
fn grmwp_migrations_vanish_with_one_task_and_grow_with_contention() {
    let topo = Topology::new(2, 1).unwrap();
    let mk = |n: usize| {
        let tasks = (0..n)
            .map(|i| {
                TaskSpec::builder(format!("t{i}"))
                    .period(Span::from_millis(40 + 10 * i as u64))
                    .mandatory(Span::from_millis(6))
                    .windup(Span::from_millis(6))
                    .build()
                    .unwrap()
            })
            .collect();
        SystemConfig::build(TaskSet::new(tasks).unwrap(), topo, AssignmentPolicy::OneByOne)
            .unwrap()
    };
    let run = |cfg: &SystemConfig| {
        GlobalExecutor::from_config(
            cfg,
            RunConfig {
                jobs: 20,
                ..Default::default()
            },
        )
        .run()
    };
    let single = run(&mk(1));
    assert_eq!(single.migrations, 0);
    let contended = run(&mk(4));
    assert!(
        contended.migrations > 0,
        "four tasks on two processors must migrate under global dispatch"
    );
}

#[test]
fn fig3_semi_fixed_creates_the_pre_decision_window() {
    let task = TaskSpec::builder("τ")
        .period(Span::from_secs(1))
        .mandatory(Span::from_millis(250))
        .windup(Span::from_millis(250))
        .optional_parts(2, Span::from_secs(1))
        .build()
        .unwrap();
    let od = Span::from_millis(750);
    let general = RemainingProfile::compute(&task, od, SchedulingMode::General);
    let semi = RemainingProfile::compute(&task, od, SchedulingMode::SemiFixed);
    assert_eq!(general.optional_window(), Span::ZERO);
    assert_eq!(semi.optional_window(), Span::from_millis(500));
    // Both complete all real-time work by the deadline.
    assert_eq!(general.remaining_at(Span::from_secs(1)), Span::ZERO);
    assert_eq!(semi.remaining_at(Span::from_secs(1)), Span::ZERO);
}

#[test]
fn risk_manager_guards_the_trading_pipeline() {
    use rtseed_trading::execution::{ExecutionConfig, Order, PaperVenue, Side};
    use rtseed_trading::market::{SyntheticFeed, TickSource};
    use rtseed_trading::risk::{RiskLimits, RiskManager, RiskVerdict};
    use rtseed_trading::strategy::Signal;

    let mut venue = PaperVenue::new(ExecutionConfig::default());
    let mut risk = RiskManager::new(RiskLimits {
        max_position: 2.0,
        max_drawdown: 10.0,
        base_order: 1.0,
        vol_target: 0.0,
    });
    let mut feed = SyntheticFeed::eur_usd(5);
    let mut vetoed = 0;
    let mut approved = 0;
    for _ in 0..50 {
        let tick = feed.next_tick().unwrap();
        venue.on_tick(tick);
        risk.on_equity(venue.equity());
        let (verdict, qty) = risk.vet(Signal::Bid, venue.position(), None);
        match verdict {
            RiskVerdict::Approved => {
                approved += 1;
                venue
                    .submit(Order {
                        at: tick.at,
                        side: Side::Buy,
                        quantity: qty,
                    })
                    .unwrap();
            }
            RiskVerdict::PositionLimit => vetoed += 1,
            other => panic!("unexpected verdict {other}"),
        }
    }
    // Only two buys fit under the 2.0 cap; everything else is vetoed.
    assert_eq!(approved, 2);
    assert_eq!(vetoed, 48);
    assert!(venue.position().quantity <= 2.0);
}
