//! Property tests for the shared P-RMWP engine: cross-backend
//! differential equivalence (the refactor's acceptance property — sim and
//! global are thin drivers over one state machine, so on a substrate
//! where their mechanisms coincide they must agree), and stale-event
//! robustness of the engine's guard conditions.

use proptest::prelude::*;
use rtseed::engine::{AfterMandatory, Cursor, Engine, OdAction, WindupCommand};
use rtseed::prelude::*;
use rtseed_model::Time;
use rtseed_sim::Calibration;

/// A calibration whose every sampled overhead is exactly zero (all bases
/// zero, no jitter) — the substrate difference between sim (overhead
/// model) and global (costless) vanishes.
fn zero_overheads() -> Calibration {
    Calibration {
        begin_mandatory_ns: 0,
        signal_ns: 0,
        switch_ns: 0,
        switch_per_part_ns: 0,
        switch_surge_ns: 0,
        switch_loaded_cpu_ns: 0,
        switch_loaded_mem_ns: 0,
        end_part_ns: 0,
        end_cross_core_ns: 0,
        jitter: 0.0,
        ..Calibration::default()
    }
}

/// (period, mandatory, windup, np, optional span), all in milliseconds.
type TaskTuple = (u64, u64, u64, usize, u64);

fn build_config(tasks: &[TaskTuple], topo: Topology) -> Option<SystemConfig> {
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(i, &(t, m, w, np, o))| {
            let mut b = TaskSpec::builder(format!("t{i}"));
            b.period(Span::from_millis(t))
                .mandatory(Span::from_millis(m))
                .windup(Span::from_millis(w));
            if np > 0 {
                b.optional_parts(np, Span::from_millis(o));
            }
            b.build().ok()
        })
        .collect::<Option<Vec<_>>>()?;
    SystemConfig::build(TaskSet::new(specs).ok()?, topo, AssignmentPolicy::OneByOne).ok()
}

fn task_strategy() -> impl Strategy<Value = TaskTuple> {
    (40u64..200, 1u64..12, 1u64..12, 0usize..4, 1u64..250)
}

/// Deterministic anchor for the differential property below: a known-good
/// two-task workload (one with overrunning parts, one with completing
/// parts) must build, run on both backends, and agree — guarding against
/// the property passing vacuously because every drawn config is rejected.
#[test]
fn differential_fixed_workload_agrees() {
    let cfg = build_config(
        &[(100, 10, 10, 2, 100), (150, 5, 5, 1, 2)],
        Topology::uniprocessor(),
    )
    .expect("fixed workload must build");
    let run = RunConfig {
        jobs: 5,
        calibration: zero_overheads(),
        ..RunConfig::default()
    };
    let sim = SimExecutor::new(cfg.clone(), run.clone()).run();
    let global = GlobalExecutor::from_config(&cfg, run).run();
    assert_eq!(sim.qos, global.qos, "sim {} vs global {}", sim.qos, global.qos);
    let (c, t, d) = sim.qos.outcome_totals();
    assert!(c > 0 && t > 0, "exercise both outcomes: c/t/d = {c}/{t}/{d}");
    assert_eq!(sim.qos.jobs(), 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a uniprocessor with zero modelled overheads and no faults, the
    /// partitioned simulator and the global ablation run the *same*
    /// schedule: one CPU leaves global dispatch nothing to decide, and a
    /// zeroed overhead model erases the substrate difference. Everything
    /// protocol-level — QoS ratios, per-part outcomes, deadline misses —
    /// comes from the one shared engine and must agree exactly.
    #[test]
    fn differential_sim_equals_global_on_uniprocessor(
        tasks in proptest::collection::vec(task_strategy(), 1..3),
        jobs in 1u64..5,
        seed in 0u64..1000,
    ) {
        let Some(cfg) = build_config(&tasks, Topology::uniprocessor()) else {
            // Unschedulable or invalid parameter draw: nothing to compare.
            return Ok(());
        };
        let run = RunConfig {
            jobs,
            seed,
            calibration: zero_overheads(),
            ..RunConfig::default()
        };
        let sim = SimExecutor::new(cfg.clone(), run.clone()).run();
        let global = GlobalExecutor::from_config(&cfg, run).run();
        prop_assert_eq!(&sim.qos, &global.qos, "sim {} vs global {}", sim.qos, global.qos);
        prop_assert_eq!(sim.qos.deadline_misses(), global.qos.deadline_misses());
        prop_assert_eq!(sim.qos.outcome_totals(), global.qos.outcome_totals());
        prop_assert_eq!(global.migrations, 0, "one CPU cannot migrate");
    }

    /// QoS is counted exactly once per job and banking never exceeds
    /// demand, whatever seq-plausible order the driver feeds the engine.
    /// Drives one task through its whole job quota with a chaos stream
    /// deciding, per stage: stale/duplicate pokes, wildly inflated banked
    /// slices (far beyond any declared WCET), parts that complete early,
    /// parts preempted with banked time, and parts left to OD
    /// termination. Invariants at the end:
    ///
    /// * `qos.jobs()` equals the quota — no job is recorded twice, none
    ///   is lost;
    /// * every job accounts for exactly `np` part outcomes;
    /// * total achieved optional execution never exceeds total requested,
    ///   even though the banked slices did.
    #[test]
    fn engine_counts_qos_once_and_caps_banking_at_demand(
        (period, m, w, np, o) in task_strategy(),
        jobs in 1u64..4,
        chaos in proptest::collection::vec(any::<u8>(), 1..32),
        overbank_ms in 1u64..1_000,
    ) {
        let Some(cfg) = build_config(&[(period, m, w, np, o)], Topology::uniprocessor())
        else {
            return Ok(());
        };
        let run = RunConfig { jobs, ..RunConfig::default() };
        let mut eng = Engine::new(&cfg, &run);
        let overbank = Span::from_millis(overbank_ms);
        let mut chaos = chaos.into_iter().cycle();
        let mut release_at = Time::ZERO;
        let mut last = Time::ZERO;

        for done_jobs in 0..jobs {
            let rel = eng.release(0, release_at);
            let stale = rel.seq + 5;
            prop_assert!(matches!(eng.od_expired(0, stale, release_at), OdAction::Stale));
            prop_assert!(!eng.windup_ready(0, stale, release_at));

            eng.on_dispatch(0, Cursor::Mandatory, eng.mandatory_hw(0), release_at);
            if chaos.next().unwrap_or(0) & 1 == 1 {
                // Preempt with an absurd banked slice, then resume: the
                // supervisor may cut the budget, never corrupt the count.
                eng.bank(0, Cursor::Mandatory, overbank);
                eng.cut_if_over_budget(0, Cursor::Mandatory, release_at);
                eng.on_dispatch(0, Cursor::Mandatory, eng.mandatory_hw(0), release_at);
            }
            let done = (release_at + Span::from_millis(1)).min(eng.od_time(0));

            let wind = match eng.mandatory_completed(0, done) {
                AfterMandatory::Signal { np: signalled } => {
                    let mut wind = None;
                    for k in 0..signalled {
                        eng.on_dispatch(0, Cursor::Optional(k as u32), eng.placement(0, k), done);
                        match chaos.next().unwrap_or(0) % 3 {
                            0 => {
                                // Runs to completion before the OD.
                                if let Some(cmd) = eng.optional_completed(0, k as u32, done) {
                                    wind = Some(cmd);
                                }
                            }
                            1 => {
                                // Preempted; the banked slice dwarfs o_k.
                                eng.bank(0, Cursor::Optional(k as u32), overbank);
                            }
                            _ => {} // left running until the OD fires
                        }
                    }
                    if wind.is_none() {
                        let od = eng.od_time(0);
                        match eng.od_expired(0, rel.seq, od) {
                            OdAction::Terminate { np: to_stop } => {
                                for k in 0..to_stop {
                                    if eng.plan_terminate(0, k).is_some() {
                                        eng.commit_terminate(0, k, od);
                                    }
                                }
                                wind = Some(eng.finish_termination(0, od));
                            }
                            OdAction::Stale | OdAction::Handled => {}
                        }
                    }
                    wind
                }
                AfterMandatory::Windup(cmd) => Some(cmd),
            };

            match wind {
                Some(WindupCommand::At { at, seq }) => {
                    prop_assert_eq!(seq, rel.seq);
                    prop_assert!(!eng.windup_ready(0, stale, at));
                    prop_assert!(eng.windup_ready(0, seq, at));
                    prop_assert!(!eng.windup_ready(0, seq, at), "duplicate wake-up absorbed");
                    eng.on_dispatch(0, Cursor::Windup, eng.mandatory_hw(0), at);
                    if chaos.next().unwrap_or(0) & 1 == 1 {
                        eng.bank(0, Cursor::Windup, overbank);
                        eng.cut_if_over_budget(0, Cursor::Windup, at);
                    }
                    last = at + Span::from_millis(w);
                    eng.windup_completed(0, last);
                }
                Some(WindupCommand::Finished { .. }) | None => last = done,
                Some(WindupCommand::AlreadyScheduled) => {
                    prop_assert!(false, "manual driving never leaves a wind-up scheduled");
                }
            }

            prop_assert!(!eng.job_in_flight(0));
            prop_assert_eq!(eng.jobs_done(0), done_jobs + 1);
            // Everything after the job closes bounces off the guards.
            prop_assert!(matches!(eng.od_expired(0, rel.seq, last), OdAction::Stale));
            prop_assert!(!eng.windup_ready(0, rel.seq, last));

            let Some(next) = rel.next_release else { break };
            release_at = next;
        }

        prop_assert!(!eng.has_live_tasks());
        let out = eng.finish(last.max(release_at));
        prop_assert_eq!(out.qos.jobs(), jobs, "each job recorded exactly once");
        let (c, t, d) = out.qos.outcome_totals();
        prop_assert_eq!(c + t + d, jobs * np as u64, "every part has exactly one outcome");
        prop_assert!(
            out.qos.achieved_total() <= out.qos.requested_total(),
            "achieved {:?} must not exceed requested {:?}",
            out.qos.achieved_total(),
            out.qos.requested_total()
        );
    }

    /// The engine's guard conditions reject everything stale: OD expiries
    /// and wind-up wake-ups carrying an old job's sequence number, and
    /// duplicates of events already handled. Drives the engine directly
    /// through one full job, poking stale inputs at every stage.
    #[test]
    fn engine_rejects_stale_and_duplicate_events(
        (period, m, w, np, o) in task_strategy(),
        stale_seq_offset in 1u64..10,
    ) {
        let Some(cfg) = build_config(&[(period, m, w, np, o)], Topology::uniprocessor())
        else {
            return Ok(());
        };
        let run = RunConfig { jobs: 2, ..RunConfig::default() };
        let mut eng = Engine::new(&cfg, &run);
        let ms = |v: u64| Time::ZERO + Span::from_millis(v);

        let rel = eng.release(0, Time::ZERO);
        let stale = rel.seq + stale_seq_offset;
        // Before the mandatory part even starts, nothing stale lands.
        prop_assert!(matches!(eng.od_expired(0, stale, Time::ZERO), OdAction::Stale));
        prop_assert!(!eng.windup_ready(0, stale, Time::ZERO));

        eng.on_dispatch(0, Cursor::Mandatory, eng.mandatory_hw(0), Time::ZERO);
        let done = ms(1).min(eng.od_time(0));
        match eng.mandatory_completed(0, done) {
            AfterMandatory::Signal { np: signalled } => {
                prop_assert_eq!(signalled, np);
                // A stale OD expiry between signal and the real OD is a
                // no-op; the real one terminates every part.
                prop_assert!(matches!(eng.od_expired(0, stale, done), OdAction::Stale));
                let od = eng.od_time(0);
                match eng.od_expired(0, rel.seq, od) {
                    OdAction::Terminate { np: to_stop } => {
                        prop_assert_eq!(to_stop, np);
                        for k in 0..to_stop {
                            if eng.plan_terminate(0, k).is_some() {
                                eng.commit_terminate(0, k, od);
                            }
                        }
                        match eng.finish_termination(0, od) {
                            WindupCommand::At { at, seq } => {
                                prop_assert_eq!(seq, rel.seq);
                                // Wrong sequence first, the real one, then
                                // a duplicate of the real one.
                                prop_assert!(!eng.windup_ready(0, stale, at));
                                prop_assert!(eng.windup_ready(0, rel.seq, at));
                                prop_assert!(!eng.windup_ready(0, rel.seq, at));
                                prop_assert!(eng.windup_completed(0, at + Span::from_millis(w)));
                            }
                            WindupCommand::Finished { .. } => {}
                            WindupCommand::AlreadyScheduled => {
                                prop_assert!(false, "termination cannot find a scheduled wind-up");
                            }
                        }
                    }
                    // The OD timer raced a completed job: allowed only if
                    // every part already ended, which manual driving never
                    // does here.
                    other => prop_assert!(false, "expected Terminate, got {other:?}"),
                }
            }
            AfterMandatory::Windup(WindupCommand::At { at, seq }) => {
                prop_assert_eq!(seq, rel.seq);
                prop_assert!(!eng.windup_ready(0, stale, at));
                prop_assert!(eng.windup_ready(0, rel.seq, at));
                prop_assert!(!eng.windup_ready(0, rel.seq, at));
                prop_assert!(eng.windup_completed(0, at + Span::from_millis(w)));
            }
            AfterMandatory::Windup(WindupCommand::Finished { met }) => {
                prop_assert!(met, "a 1 ms mandatory part cannot miss");
            }
            AfterMandatory::Windup(WindupCommand::AlreadyScheduled) => {
                prop_assert!(false, "first job cannot already have a wind-up");
            }
        }

        // The job is closed: every late event bounces off the guards.
        prop_assert!(!eng.job_in_flight(0));
        prop_assert_eq!(eng.jobs_done(0), 1);
        prop_assert!(matches!(
            eng.od_expired(0, rel.seq, ms(period)),
            OdAction::Stale
        ));
        prop_assert!(!eng.windup_ready(0, rel.seq, ms(period)));
    }
}
