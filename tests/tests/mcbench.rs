//! Differential determinism suite for the Monte-Carlo experiment engine
//! (`rtseed_bench::mcbench`).
//!
//! Four families of evidence, mirroring DESIGN.md's determinism
//! argument:
//!
//! * **Worker differential** (proptest): an arbitrary small sweep run on
//!   1 worker and on N workers produces identical per-run summaries and
//!   byte-identical canonical JSON.
//! * **Scratch reuse** (proptest): one `ExecutorScratch` driven through a
//!   random sequence of runs produces exactly the summaries that fresh
//!   executors produce — no state bleeds between runs, which is the
//!   license for the per-worker arena.
//! * **Chaos × pool** (proptest): any chaos scenario embedded as a sweep
//!   cell replays byte-identically inside the worker pool — the pooled
//!   extension of chaosbench's double-replay gate.
//! * **Golden anchor**: a fixed-seed quick sweep's canonical JSON is
//!   pinned under `tests/golden/` and diffed byte-for-byte. Regenerate
//!   deliberately with `RTSEED_REGEN_GOLDEN=1`.

use proptest::prelude::*;
use rtseed::exec_sim::ExecutorScratch;
use rtseed::policy::AssignmentPolicy;
use rtseed_bench::chaos::run_chaos;
use rtseed_bench::mcbench::{
    canonical_json, execute_run, fnv1a64, run_sweep, FaultLevel, SweepConfig,
};
use rtseed_sim::ChaosConfig;

/// A small sweep grid decoded from proptest-chosen knobs.
fn small_config(seed: u64, utils: u8, nps: u8, faulty: bool, reps: usize, chaos: usize) -> SweepConfig {
    SweepConfig {
        seed,
        cores: 4,
        smt: 2,
        tasks: 4,
        utils: [2.0, 4.0, 5.6][..utils as usize].to_vec(),
        nps: [2, 4][..nps as usize].to_vec(),
        policies: vec![AssignmentPolicy::OneByOne],
        faults: if faulty {
            vec![FaultLevel::None, FaultLevel::Overruns]
        } else {
            vec![FaultLevel::None]
        },
        runs_per_cell: reps,
        jobs: 4,
        chaos_cells: chaos,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1 worker vs N workers: identical per-run summaries, identical
    /// heatmap cells, byte-identical canonical JSON.
    #[test]
    fn one_worker_and_n_workers_agree_bytewise(
        seed in 0u64..1024,
        utils in 1u8..4,
        nps in 1u8..3,
        faulty in any::<bool>(),
        reps in 1usize..3,
        workers in 2usize..6,
    ) {
        // The chaos-cell count rides on the seed to stay within the
        // strategy-tuple arity.
        let chaos = (seed % 2) as usize;
        let cfg = small_config(seed, utils, nps, faulty, reps, chaos);
        let a = run_sweep(&cfg, 1);
        let b = run_sweep(&cfg, workers);
        prop_assert_eq!(&a.result.runs, &b.result.runs, "per-run summaries diverge");
        prop_assert_eq!(&a.result.cells, &b.result.cells, "heatmap cells diverge");
        prop_assert_eq!(
            canonical_json(&cfg, &a.result),
            canonical_json(&cfg, &b.result),
            "canonical bytes diverge"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scratch reuse: one `ExecutorScratch` carried through a random run
    /// sequence produces exactly what fresh executors produce. This is
    /// the test that makes the per-worker arena safe.
    #[test]
    fn reused_scratch_never_bleeds_state(
        seed in 0u64..1024,
        sequence in prop::collection::vec(0usize..12, 2..8),
    ) {
        let cfg = small_config(seed, 3, 2, true, 1, 1);
        let total = cfg.total_runs();
        let mut reused = ExecutorScratch::new();
        for &pick in &sequence {
            let run_id = pick % total;
            let with_reuse = execute_run(&cfg, run_id, &mut reused);
            let fresh = execute_run(&cfg, run_id, &mut ExecutorScratch::new());
            prop_assert_eq!(with_reuse, fresh, "run {} differs under scratch reuse", run_id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos × pool: a chaos scenario embedded as a sweep cell carries
    /// the same trace-byte hash as a direct standalone replay, and the
    /// pooled sweep reproduces it for any worker count.
    #[test]
    fn chaos_cells_replay_byte_identically_in_the_pool(
        seed in 0u64..256,
        workers in 2usize..5,
    ) {
        let cfg = small_config(seed, 1, 1, false, 1, 2);
        let a = run_sweep(&cfg, 1);
        let b = run_sweep(&cfg, workers);
        let chaos_runs: Vec<_> = a.result.runs.iter().filter(|r| r.kind == "chaos").collect();
        prop_assert_eq!(chaos_runs.len(), 2);
        for r in &chaos_runs {
            // The pooled hash equals a standalone replay of the same
            // scenario seed — the pool adds nothing and loses nothing.
            let direct = run_chaos(&ChaosConfig::quick(), r.seed, 8);
            prop_assert_eq!(
                r.trace_hash,
                fnv1a64(direct.trace_jsonl.as_bytes()),
                "pooled chaos cell diverges from standalone replay"
            );
            prop_assert_eq!(r.violations, 0, "chaos cell violated invariants");
        }
        prop_assert_eq!(&a.result.runs, &b.result.runs);
    }
}

/// Fixed-seed anchor: the canonical JSON of a quick sweep is pinned
/// byte-for-byte under `tests/golden/`. A diff means the sweep schema,
/// the seed derivation, the simulator, or the serving layer changed
/// behaviour — regenerate deliberately with `RTSEED_REGEN_GOLDEN=1`.
#[test]
fn golden_anchor_quick_sweep_canonical_json() {
    let cfg = SweepConfig::quick(0);
    let run = run_sweep(&cfg, 2);
    let canon = canonical_json(&cfg, &run.result);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/golden/mcbench_quick_seed0.json"
    );
    if std::env::var_os("RTSEED_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &canon).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with RTSEED_REGEN_GOLDEN=1");
    assert_eq!(
        canon, golden,
        "canonical sweep bytes diverge from the golden anchor"
    );
}
