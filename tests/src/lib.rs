//! Cross-crate integration tests live in this package's `tests/` directory.
